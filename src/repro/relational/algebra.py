"""Logical relational algebra plans.

A query in the engine is a tree of :class:`LogicalPlan` nodes.  Plans are
immutable descriptions; they are executed by
:mod:`repro.relational.operators`, optimised by
:mod:`repro.relational.optimizer`, rendered to SQL by
:mod:`repro.relational.sqlgen`, and fingerprinted by
:mod:`repro.relational.cache` for on-demand materialization.

The node set matches what the paper's SQL listings require: scans, selection,
projection (with computed expressions), equi-joins, grouping/aggregation,
sorting, limiting, distinct, union, constant relations and table-function
scans (for ``tokenize``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PlanError
from repro.relational.expressions import Expression
from repro.relational.relation import Relation


class LogicalPlan:
    """Base class for logical plan nodes."""

    def children(self) -> list["LogicalPlan"]:
        """Return the child plans of this node."""
        return []

    def with_children(self, children: Sequence["LogicalPlan"]) -> "LogicalPlan":
        """Return a copy of this node with its children replaced."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Return a deterministic string identifying this plan (for caching)."""
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """Return a human-readable, indented plan description."""
        lines = ["  " * indent + self._describe_self()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _describe_self(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Scan a named base table or view from the catalog."""

    table: str

    def with_children(self, children: Sequence[LogicalPlan]) -> "Scan":
        if children:
            raise PlanError("Scan has no children")
        return self

    def fingerprint(self) -> str:
        return f"scan({self.table})"

    def _describe_self(self) -> str:
        return f"Scan({self.table})"


@dataclass(frozen=True)
class Values(LogicalPlan):
    """A constant, already-materialised relation embedded in the plan."""

    relation: Relation
    label: str = "values"

    def with_children(self, children: Sequence[LogicalPlan]) -> "Values":
        if children:
            raise PlanError("Values has no children")
        return self

    def fingerprint(self) -> str:
        content = self.relation.content_fingerprint()
        return f"values({self.label}:{self.relation.schema.names}:{content})"

    def _describe_self(self) -> str:
        return f"Values({self.label}, rows={self.relation.num_rows})"


@dataclass(frozen=True)
class Select(LogicalPlan):
    """Filter rows by a boolean predicate expression."""

    child: LogicalPlan
    predicate: Expression

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def fingerprint(self) -> str:
        return f"select({self.predicate.to_sql()})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        return f"Select({self.predicate.to_sql()})"


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Compute output columns from expressions over the input.

    ``columns`` maps output column names to expressions.  Projection both
    narrows and computes, covering the SQL ``SELECT expr AS name`` clause.
    """

    child: LogicalPlan
    columns: tuple[tuple[str, Expression], ...]

    def __init__(self, child: LogicalPlan, columns: Sequence[tuple[str, Expression]]):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "columns", tuple(columns))

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Project":
        (child,) = children
        return Project(child, self.columns)

    def fingerprint(self) -> str:
        rendered = ",".join(f"{name}={expr.to_sql()}" for name, expr in self.columns)
        return f"project({rendered})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        rendered = ", ".join(f"{expr.to_sql()} AS {name}" for name, expr in self.columns)
        return f"Project({rendered})"


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Equi-join of two inputs on pairs of column names.

    ``conditions`` is a sequence of ``(left column, right column)`` pairs; all
    pairs must match for a row combination to qualify (conjunctive equi-join,
    which is what every query in the paper uses).  ``how`` is ``"inner"`` or
    ``"left"``.
    """

    left: LogicalPlan
    right: LogicalPlan
    conditions: tuple[tuple[str, str], ...]
    how: str = "inner"

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        conditions: Sequence[tuple[str, str]],
        how: str = "inner",
    ):
        if how not in ("inner", "left"):
            raise PlanError(f"unsupported join type {how!r}")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "conditions", tuple(conditions))
        object.__setattr__(self, "how", how)

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Join":
        left, right = children
        return Join(left, right, self.conditions, self.how)

    def fingerprint(self) -> str:
        conditions = ",".join(f"{left}={right}" for left, right in self.conditions)
        return (
            f"join({self.how};{conditions})"
            f"[{self.left.fingerprint()}|{self.right.fingerprint()}]"
        )

    def _describe_self(self) -> str:
        conditions = ", ".join(f"{left} = {right}" for left, right in self.conditions)
        return f"Join({self.how}, {conditions})"


@dataclass(frozen=True)
class AggregateSpec:
    """A single aggregate: ``function(input) AS output``.

    Supported functions: ``count`` (input may be ``None`` for ``count(*)``),
    ``sum``, ``avg``, ``min``, ``max``.
    """

    function: str
    input_column: str | None
    output_name: str

    def fingerprint(self) -> str:
        return f"{self.function}({self.input_column or '*'})->{self.output_name}"


@dataclass(frozen=True)
class Aggregate(LogicalPlan):
    """Group by key columns and compute aggregates per group.

    With an empty ``keys`` tuple the node computes global aggregates over the
    whole input (one output row), matching SQL's aggregate-without-GROUP-BY.
    """

    child: LogicalPlan
    keys: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    def __init__(
        self,
        child: LogicalPlan,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "aggregates", tuple(aggregates))

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.keys, self.aggregates)

    def fingerprint(self) -> str:
        aggregates = ",".join(spec.fingerprint() for spec in self.aggregates)
        return f"aggregate({','.join(self.keys)};{aggregates})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        aggregates = ", ".join(
            f"{spec.function}({spec.input_column or '*'}) AS {spec.output_name}"
            for spec in self.aggregates
        )
        keys = ", ".join(self.keys) if self.keys else "<global>"
        return f"Aggregate(keys=[{keys}], {aggregates})"


@dataclass(frozen=True)
class SortKey:
    """A sort key: column name plus direction."""

    column: str
    ascending: bool = True

    def fingerprint(self) -> str:
        return f"{self.column}:{'asc' if self.ascending else 'desc'}"


@dataclass(frozen=True)
class Sort(LogicalPlan):
    """Sort the input by one or more keys."""

    child: LogicalPlan
    keys: tuple[SortKey, ...]

    def __init__(self, child: LogicalPlan, keys: Sequence[SortKey]):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "keys", tuple(keys))

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def fingerprint(self) -> str:
        keys = ",".join(key.fingerprint() for key in self.keys)
        return f"sort({keys})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        keys = ", ".join(key.fingerprint() for key in self.keys)
        return f"Sort({keys})"


@dataclass(frozen=True)
class Limit(LogicalPlan):
    """Keep only the first ``count`` rows of the input."""

    child: LogicalPlan
    count: int

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)

    def fingerprint(self) -> str:
        return f"limit({self.count})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        return f"Limit({self.count})"


@dataclass(frozen=True)
class Distinct(LogicalPlan):
    """Remove duplicate rows."""

    child: LogicalPlan

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        (child,) = children
        return Distinct(child)

    def fingerprint(self) -> str:
        return f"distinct[{self.child.fingerprint()}]"


@dataclass(frozen=True)
class Union(LogicalPlan):
    """Concatenate two type-compatible inputs (SQL ``UNION ALL``)."""

    left: LogicalPlan
    right: LogicalPlan

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Union":
        left, right = children
        return Union(left, right)

    def fingerprint(self) -> str:
        return f"union[{self.left.fingerprint()}|{self.right.fingerprint()}]"


@dataclass(frozen=True)
class TableFunctionScan(LogicalPlan):
    """Apply a registered table function (e.g. ``tokenize``) to the child's output."""

    child: LogicalPlan
    function: str
    options: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __init__(
        self,
        child: LogicalPlan,
        function: str,
        options: Sequence[tuple[str, Any]] = (),
    ):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "options", tuple(options))

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "TableFunctionScan":
        (child,) = children
        return TableFunctionScan(child, self.function, self.options)

    def fingerprint(self) -> str:
        options = ",".join(f"{name}={value!r}" for name, value in self.options)
        return f"tablefn({self.function};{options})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        return f"TableFunctionScan({self.function})"


@dataclass(frozen=True)
class Rename(LogicalPlan):
    """Rename columns of the child plan."""

    child: LogicalPlan
    mapping: tuple[tuple[str, str], ...]

    def __init__(self, child: LogicalPlan, mapping: dict[str, str] | Sequence[tuple[str, str]]):
        if isinstance(mapping, dict):
            mapping = tuple(sorted(mapping.items()))
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mapping", tuple(mapping))

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: Sequence[LogicalPlan]) -> "Rename":
        (child,) = children
        return Rename(child, self.mapping)

    def fingerprint(self) -> str:
        mapping = ",".join(f"{old}->{new}" for old, new in self.mapping)
        return f"rename({mapping})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        mapping = ", ".join(f"{old} AS {new}" for old, new in self.mapping)
        return f"Rename({mapping})"
