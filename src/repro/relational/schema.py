"""Relation schemas: ordered, named, typed fields."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import ColumnError, SchemaError
from repro.relational.column import DataType


@dataclass(frozen=True)
class Field:
    """A single named, typed attribute of a relation."""

    name: str
    dtype: DataType

    def renamed(self, name: str) -> "Field":
        """Return a copy of the field with a different name."""
        return Field(name, self.dtype)

    def __str__(self) -> str:
        return f"{self.name}:{self.dtype.value}"


class Schema:
    """An ordered collection of :class:`Field` objects with unique names."""

    __slots__ = ("_fields", "_index")

    def __init__(self, fields: Sequence[Field] | Iterable[Field]):
        fields = list(fields)
        names = [field.name for field in fields]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names in schema: {sorted(duplicates)}")
        self._fields = tuple(fields)
        self._index = {field.name: position for position, field in enumerate(fields)}

    # -- construction -----------------------------------------------------

    @classmethod
    def of(cls, **columns: DataType) -> "Schema":
        """Build a schema from keyword arguments, e.g. ``Schema.of(docID=DataType.INT)``."""
        return cls([Field(name, dtype) for name, dtype in columns.items()])

    # -- accessors ---------------------------------------------------------

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> list[str]:
        return [field.name for field in self._fields]

    @property
    def dtypes(self) -> list[DataType]:
        return [field.dtype for field in self._fields]

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:
        return "Schema(" + ", ".join(str(field) for field in self._fields) + ")"

    def field(self, name: str) -> Field:
        """Return the field called ``name`` or raise :class:`ColumnError`."""
        try:
            return self._fields[self._index[name]]
        except KeyError:
            raise ColumnError(
                f"unknown column {name!r}; available columns: {self.names}"
            ) from None

    def position(self, name: str) -> int:
        """Return the ordinal position (0-based) of ``name``."""
        self.field(name)
        return self._index[name]

    def dtype_of(self, name: str) -> DataType:
        """Return the data type of the column called ``name``."""
        return self.field(name).dtype

    # -- derivation ---------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Schema":
        """Return a new schema containing only ``names``, in that order."""
        return Schema([self.field(name) for name in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a new schema with columns renamed according to ``mapping``."""
        return Schema(
            [field.renamed(mapping.get(field.name, field.name)) for field in self._fields]
        )

    def concat(self, other: "Schema", *, suffix: str = "_right") -> "Schema":
        """Concatenate two schemas, suffixing clashing names from ``other``."""
        fields = list(self._fields)
        existing = set(self.names)
        for field in other.fields:
            name = field.name
            while name in existing:
                name = name + suffix
            existing.add(name)
            fields.append(field.renamed(name))
        return Schema(fields)

    def compatible_with(self, other: "Schema") -> bool:
        """Return True if the two schemas can be unioned (same arity and types)."""
        return self.dtypes == other.dtypes
