"""User-defined function registry.

The paper notes that *"the only additions needed to MonetDB to support
on-demand indexing were two user-defined functions to implement a text
tokenizer and Snowball stemmers for several languages"* (Section 2.1).  This
module provides the registry holding those functions (plus the standard
scalar helpers used in the BM25 SQL listings: ``lcase``, ``log``) and the
default registry pre-populated with them.

Two kinds of functions are distinguished:

* **scalar functions** map N input columns to one output column of the same
  length (``lcase``, ``stem``, ``log``, ``length``);
* **table functions** map a whole input relation to a new relation with a
  different number of rows (``tokenize`` explodes documents into tokens).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import FunctionError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


@dataclass
class ScalarFunction:
    """A scalar UDF applied element-wise over its argument columns."""

    name: str
    output_type: DataType
    implementation: Callable[..., object]
    arity: int

    def apply(self, args: Sequence[Column], num_rows: int) -> Column:
        """Evaluate the function row-by-row over the argument columns."""
        if len(args) != self.arity:
            raise FunctionError(
                f"function {self.name!r} expects {self.arity} arguments, got {len(args)}"
            )
        if not args:
            value = self.implementation()
            return Column.constant(value, num_rows, self.output_type)
        columns = [arg.to_list() for arg in args]
        values = [self.implementation(*row) for row in zip(*columns)]
        if self.output_type is DataType.STRING:
            array = np.empty(len(values), dtype=object)
            for index, value in enumerate(values):
                array[index] = value
            return Column(array, self.output_type)
        return Column(values, self.output_type)


@dataclass
class TableFunction:
    """A table UDF mapping an input relation to an output relation."""

    name: str
    implementation: Callable[[Relation], Relation]

    def apply(self, relation: Relation) -> Relation:
        return self.implementation(relation)


class FunctionRegistry:
    """Registry of scalar and table user-defined functions."""

    def __init__(self) -> None:
        self._scalars: dict[str, ScalarFunction] = {}
        self._tables: dict[str, TableFunction] = {}

    # -- registration -------------------------------------------------------

    def register_scalar(
        self,
        name: str,
        implementation: Callable[..., object],
        output_type: DataType,
        arity: int,
    ) -> None:
        """Register (or replace) a scalar function."""
        self._scalars[name.lower()] = ScalarFunction(
            name=name.lower(),
            output_type=output_type,
            implementation=implementation,
            arity=arity,
        )

    def register_table(self, name: str, implementation: Callable[[Relation], Relation]) -> None:
        """Register (or replace) a table function."""
        self._tables[name.lower()] = TableFunction(name=name.lower(), implementation=implementation)

    # -- lookup ---------------------------------------------------------------

    def scalar(self, name: str) -> ScalarFunction:
        """Return the scalar function called ``name``."""
        try:
            return self._scalars[name.lower()]
        except KeyError:
            raise FunctionError(
                f"unknown scalar function {name!r}; registered: {sorted(self._scalars)}"
            ) from None

    def table(self, name: str) -> TableFunction:
        """Return the table function called ``name``."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise FunctionError(
                f"unknown table function {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def has_scalar(self, name: str) -> bool:
        return name.lower() in self._scalars

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def copy(self) -> "FunctionRegistry":
        """Return a shallow copy of the registry (used by per-database catalogs)."""
        registry = FunctionRegistry()
        registry._scalars.update(self._scalars)
        registry._tables.update(self._tables)
        return registry


# ---------------------------------------------------------------------------
# Built-in functions matching the paper's SQL listings
# ---------------------------------------------------------------------------


def _safe_log(value: float) -> float:
    """Natural logarithm clamped to avoid ``-inf`` for non-positive inputs."""
    if value <= 0:
        return 0.0
    return math.log(value)


def _make_tokenize(tokenizer=None) -> Callable[[Relation], Relation]:
    """Build the ``tokenize`` table function around a configurable tokenizer.

    The input relation must have at least two columns; the first is treated
    as the document identifier and the second as the document text, as in the
    paper's ``tokenize((SELECT docID, data FROM docs))`` usage.  The output
    relation has columns ``(docID, token, pos)``.
    """

    def tokenize(relation: Relation) -> Relation:
        from repro.text.tokenizer import Tokenizer

        active = tokenizer if tokenizer is not None else Tokenizer()
        if relation.num_columns < 2:
            raise FunctionError(
                "tokenize() expects a relation with (docID, data) columns, "
                f"got {relation.schema.names}"
            )
        id_field = relation.schema.fields[0]
        doc_ids: list[object] = []
        tokens: list[str] = []
        positions: list[int] = []
        id_column = relation.column_at(0)
        text_column = relation.column_at(1)
        for row_index in range(relation.num_rows):
            doc_id = id_column[row_index]
            text = text_column[row_index]
            for position, token in enumerate(active.tokenize(str(text))):
                doc_ids.append(doc_id)
                tokens.append(token)
                positions.append(position)
        schema = Schema(
            [
                Field(id_field.name, id_field.dtype),
                Field("token", DataType.STRING),
                Field("pos", DataType.INT),
            ]
        )
        return Relation(
            schema,
            [
                Column(doc_ids, id_field.dtype),
                Column(tokens, DataType.STRING),
                Column(positions, DataType.INT),
            ],
        )

    return tokenize


def _stem(token: str, language_spec: str) -> str:
    """The ``stem(token, 'sb-english')`` scalar UDF from the paper."""
    from repro.text.stemming import stem as apply_stem

    language = language_spec
    if language.startswith("sb-"):
        language = language[3:]
    return apply_stem(token, language)


def default_registry() -> FunctionRegistry:
    """Return a registry pre-populated with the paper's UDFs and SQL builtins."""
    registry = FunctionRegistry()
    registry.register_scalar("lcase", lambda value: str(value).lower(), DataType.STRING, arity=1)
    registry.register_scalar("ucase", lambda value: str(value).upper(), DataType.STRING, arity=1)
    registry.register_scalar("length", lambda value: len(str(value)), DataType.INT, arity=1)
    registry.register_scalar("log", _safe_log, DataType.FLOAT, arity=1)
    registry.register_scalar(
        "sqrt", lambda value: math.sqrt(max(value, 0.0)), DataType.FLOAT, arity=1
    )
    registry.register_scalar("abs", lambda value: abs(value), DataType.FLOAT, arity=1)
    registry.register_scalar("stem", _stem, DataType.STRING, arity=2)
    registry.register_scalar(
        "concat", lambda left, right: f"{left}{right}", DataType.STRING, arity=2
    )
    registry.register_table("tokenize", _make_tokenize())
    return registry
