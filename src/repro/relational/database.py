"""The :class:`Database` facade: catalog + executor + optimizer + cache.

A :class:`Database` is the reproduction's equivalent of a MonetDB instance:
it holds base tables and views, registers user-defined functions (the
tokenizer and stemmers of Section 2.1), executes logical plans and keeps the
on-demand materialization cache of Section 2.2.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.relational.algebra import LogicalPlan, Scan
from repro.relational.cache import MaterializationCache
from repro.relational.catalog import Catalog
from repro.relational.functions import FunctionRegistry, default_registry
from repro.relational.operators import Executor
from repro.relational.optimizer import optimize
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class Database:
    """An in-memory columnar database instance."""

    def __init__(
        self,
        functions: FunctionRegistry | None = None,
        *,
        cache_enabled: bool = True,
        cache_max_entries: int | None = None,
        optimize_plans: bool = True,
    ):
        self.catalog = Catalog()
        self.functions = functions if functions is not None else default_registry()
        self.cache = MaterializationCache(max_entries=cache_max_entries)
        self.cache_enabled = cache_enabled
        self.optimize_plans = optimize_plans
        self._executor = Executor(self.catalog.resolve, self.functions)

    # -- data definition ------------------------------------------------------------

    def create_table(self, name: str, relation: Relation, *, replace: bool = False) -> None:
        """Register a base table; invalidates cache entries that depend on it."""
        self.catalog.create_table(name, relation, replace=replace)
        self.cache.invalidate_table(name)

    def create_table_from_rows(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]],
        *,
        replace: bool = False,
    ) -> Relation:
        """Convenience: build a relation from rows and register it."""
        relation = Relation.from_rows(schema, rows)
        self.create_table(name, relation, replace=replace)
        return relation

    def create_table_from_dicts(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Mapping[str, Any]],
        *,
        replace: bool = False,
    ) -> Relation:
        """Convenience: build a relation from row dictionaries and register it."""
        relation = Relation.from_dicts(schema, rows)
        self.create_table(name, relation, replace=replace)
        return relation

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.cache.invalidate_table(name)

    def create_view(self, name: str, plan: LogicalPlan, *, replace: bool = False) -> None:
        """Register a view: a named logical plan evaluated lazily on scan."""
        self.catalog.create_view(name, plan, replace=replace)
        self.cache.invalidate_table(name)

    def drop_view(self, name: str) -> None:
        self.catalog.drop_view(name)
        self.cache.invalidate_table(name)

    def table(self, name: str) -> Relation:
        """Return the materialised contents of a base table."""
        return self.catalog.table(name)

    def scan(self, name: str) -> Scan:
        """Return a :class:`Scan` plan node over the named table or view."""
        return Scan(name)

    # -- execution ---------------------------------------------------------------------

    def execute(self, plan: LogicalPlan, *, use_cache: bool | None = None) -> Relation:
        """Execute a logical plan, consulting the materialization cache."""
        caching = self.cache_enabled if use_cache is None else use_cache
        if self.optimize_plans:
            plan = optimize(plan)
        if caching:
            cached = self.cache.get(plan)
            if cached is not None:
                return cached
        result = self._executor.execute(plan)
        if caching:
            self.cache.put(plan, result, dependencies=self._plan_dependencies(plan))
        return result

    def _plan_dependencies(self, plan: LogicalPlan) -> frozenset[str]:
        """Names of every table and view the plan depends on, views expanded.

        Cached results must be invalidated when any *base* table they were
        computed from changes, even when the plan only scans a view defined
        over that table, so scans of views are expanded transitively.
        """
        from repro.relational.algebra import Scan

        seen: set[str] = set()
        stack: list[LogicalPlan] = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, Scan):
                if node.table in seen:
                    continue
                seen.add(node.table)
                if self.catalog.has_view(node.table):
                    stack.append(self.catalog.view(node.table))
                continue
            stack.extend(node.children())
        return frozenset(seen)

    def materialize_view(self, name: str) -> Relation:
        """Force materialisation of a view into the cache and return its contents."""
        plan = Scan(name)
        return self.execute(plan, use_cache=True)

    def query(self, name: str) -> Relation:
        """Execute ``SELECT * FROM name`` (table or view)."""
        return self.execute(Scan(name))

    # -- persistence --------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Snapshot every base table into the directory ``path`` (see :mod:`repro.storage`)."""
        from repro.storage.snapshot import save_database

        return save_database(self, path)

    @classmethod
    def open(
        cls, path: str | Path, *, mmap: bool = True, lazy: bool = True, **kwargs: Any
    ) -> "Database":
        """Open a database snapshot written by :meth:`save`.

        Tables hydrate lazily on first scan (memmap-backed, zero-copy for
        numeric columns); ``kwargs`` are forwarded to the constructor.
        """
        from repro.storage.snapshot import open_database

        return open_database(path, database=cls(**kwargs), mmap=mmap, lazy=lazy)

    # -- maintenance --------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every materialised intermediate result (cold-cache state)."""
        self.cache.clear()

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def view_names(self) -> list[str]:
        return self.catalog.view_names()
