"""The catalog: named base tables and views of a database."""

from __future__ import annotations

from repro.errors import CatalogError
from repro.relational.algebra import LogicalPlan
from repro.relational.relation import Relation


class Catalog:
    """Maps names to base tables (materialised relations) and views (plans)."""

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}
        self._views: dict[str, LogicalPlan] = {}

    # -- tables -----------------------------------------------------------------

    def create_table(self, name: str, relation: Relation, *, replace: bool = False) -> None:
        """Register a base table under ``name``."""
        if not replace and self.exists(name):
            raise CatalogError(f"table or view {name!r} already exists")
        self._views.pop(name, None)
        self._tables[name] = relation

    def drop_table(self, name: str) -> None:
        """Remove the base table called ``name``."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> Relation:
        """Return the base table called ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}; known: {sorted(self._tables)}") from None

    # -- views -----------------------------------------------------------------

    def create_view(self, name: str, plan: LogicalPlan, *, replace: bool = False) -> None:
        """Register a view (a named logical plan) under ``name``."""
        if not replace and self.exists(name):
            raise CatalogError(f"table or view {name!r} already exists")
        self._tables.pop(name, None)
        self._views[name] = plan

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise CatalogError(f"unknown view {name!r}")
        del self._views[name]

    def has_view(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> LogicalPlan:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"unknown view {name!r}; known: {sorted(self._views)}") from None

    # -- generic lookup -----------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._tables or name in self._views

    def resolve(self, name: str) -> Relation | LogicalPlan:
        """Return the relation (for tables) or plan (for views) bound to ``name``."""
        if name in self._tables:
            return self._tables[name]
        if name in self._views:
            return self._views[name]
        raise CatalogError(
            f"unknown table or view {name!r}; "
            f"tables: {sorted(self._tables)}, views: {sorted(self._views)}"
        )

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def view_names(self) -> list[str]:
        return sorted(self._views)
