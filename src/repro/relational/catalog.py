"""The catalog: named base tables and views of a database.

Base tables come in two flavours: *materialised* relations registered with
:meth:`Catalog.create_table`, and *lazy* tables registered with
:meth:`Catalog.create_lazy_table`, whose loader runs on the first scan and
whose result is then cached as an ordinary table.  Lazy tables are how
database snapshots hydrate: opening a snapshot registers one loader per
table and touches no data until a query needs it.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.errors import CatalogError
from repro.relational.algebra import LogicalPlan
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class Catalog:
    """Maps names to base tables (materialised relations) and views (plans)."""

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}
        self._lazy: dict[str, Callable[[], Relation]] = {}
        # schemas declared for lazy tables (snapshot manifests record them),
        # so static analysis can see column names/dtypes without hydrating
        self._lazy_schemas: dict[str, Schema] = {}
        self._views: dict[str, LogicalPlan] = {}
        # guards lazy hydration: concurrent first scans of the same table
        # (execute_many workers) must run the loader exactly once
        self._hydration_lock = threading.Lock()

    # -- tables -----------------------------------------------------------------

    def create_table(self, name: str, relation: Relation, *, replace: bool = False) -> None:
        """Register a base table under ``name``."""
        if not replace and self.exists(name):
            raise CatalogError(f"table or view {name!r} already exists")
        self._views.pop(name, None)
        self._lazy.pop(name, None)
        self._lazy_schemas.pop(name, None)
        self._tables[name] = relation

    def create_lazy_table(
        self,
        name: str,
        loader: Callable[[], Relation],
        *,
        replace: bool = False,
        schema: Schema | None = None,
    ) -> None:
        """Register a table whose contents are produced by ``loader`` on first scan.

        ``schema`` optionally declares the loader's output schema up front
        (snapshot manifests know it), letting :meth:`declared_schema` answer
        without running the loader.
        """
        if not replace and self.exists(name):
            raise CatalogError(f"table or view {name!r} already exists")
        self._views.pop(name, None)
        self._tables.pop(name, None)
        self._lazy[name] = loader
        if schema is not None:
            self._lazy_schemas[name] = schema
        else:
            self._lazy_schemas.pop(name, None)

    def drop_table(self, name: str) -> None:
        """Remove the base table called ``name``."""
        if name in self._lazy:
            del self._lazy[name]
            self._lazy_schemas.pop(name, None)
            return
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables or name in self._lazy

    def is_hydrated(self, name: str) -> bool:
        """True when ``name`` is a table whose contents are in memory already."""
        return name in self._tables

    def declared_schema(self, name: str) -> Schema | None:
        """The schema of table ``name`` without hydrating it, if knowable.

        Hydrated tables answer from the relation; lazy tables answer from the
        schema declared at registration (``None`` when the loader's output
        shape was not declared).  Views always answer ``None`` — resolving a
        view's schema requires building its plan.
        """
        relation = self._tables.get(name)
        if relation is not None:
            return relation.schema
        return self._lazy_schemas.get(name)

    def table(self, name: str) -> Relation:
        """Return the base table called ``name``, hydrating a lazy table if needed."""
        relation = self._tables.get(name)
        if relation is not None:
            return relation
        with self._hydration_lock:
            relation = self._tables.get(name)
            if relation is not None:
                return relation
            loader = self._lazy.get(name)
            if loader is not None:
                relation = loader()
                self._tables[name] = relation
                del self._lazy[name]
                self._lazy_schemas.pop(name, None)
                return relation
        raise CatalogError(
            f"unknown table {name!r}; known: {sorted(self.table_names_set())}"
        )

    # -- views -----------------------------------------------------------------

    def create_view(self, name: str, plan: LogicalPlan, *, replace: bool = False) -> None:
        """Register a view (a named logical plan) under ``name``."""
        if not replace and self.exists(name):
            raise CatalogError(f"table or view {name!r} already exists")
        self._tables.pop(name, None)
        self._views[name] = plan

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise CatalogError(f"unknown view {name!r}")
        del self._views[name]

    def has_view(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> LogicalPlan:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"unknown view {name!r}; known: {sorted(self._views)}") from None

    # -- generic lookup -----------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._tables or name in self._lazy or name in self._views

    def resolve(self, name: str) -> Relation | LogicalPlan:
        """Return the relation (for tables) or plan (for views) bound to ``name``."""
        if self.has_table(name):
            return self.table(name)
        if name in self._views:
            return self._views[name]
        raise CatalogError(
            f"unknown table or view {name!r}; "
            f"tables: {sorted(self.table_names_set())}, views: {sorted(self._views)}"
        )

    def release(self) -> None:
        """Drop every table, lazy loader and view reference.

        Used by ``Engine.close()``: dropping the references lets memmap-backed
        snapshot buffers be unmapped once no query result still points at
        them.  The catalog stays usable (empty) afterwards.
        """
        self._tables.clear()
        self._lazy.clear()
        self._lazy_schemas.clear()
        self._views.clear()

    def table_names_set(self) -> set[str]:
        """The names of every base table, hydrated or lazy."""
        return set(self._tables) | set(self._lazy)

    def table_names(self) -> list[str]:
        return sorted(self.table_names_set())

    def view_names(self) -> list[str]:
        return sorted(self._views)
