"""Stopword lists for the languages supported by the stemmer registry.

Stopword removal is optional in the analyzers (the paper's BM25 pipeline does
not remove stopwords explicitly; IDF down-weights them).  The lists here are
small, standard high-frequency function-word lists sufficient for the
synthetic workloads and examples.
"""

from __future__ import annotations

ENGLISH_STOPWORDS = frozenset(
    """
    a about above after again against all am an and any are as at be because been
    before being below between both but by could did do does doing down during each
    few for from further had has have having he her here hers herself him himself
    his how i if in into is it its itself just me more most my myself no nor not of
    off on once only or other our ours ourselves out over own same she should so
    some such than that the their theirs them themselves then there these they this
    those through to too under until up very was we were what when where which while
    who whom why will with you your yours yourself yourselves
    """.split()
)

DUTCH_STOPWORDS = frozenset(
    """
    de het een en van in is dat op te zijn met voor niet aan er om ook als maar dan
    zij hij je wordt worden door naar bij uit nog over al zo dit die deze heeft had
    """.split()
)

GERMAN_STOPWORDS = frozenset(
    """
    der die das ein eine und oder in ist von zu mit auf nicht es dass als auch an
    werden wird sich aus bei nach wie wenn aber noch nur schon
    """.split()
)

FRENCH_STOPWORDS = frozenset(
    """
    le la les un une des et ou dans est de du que qui avec pour sur ne pas au aux ce
    cette ces il elle ils elles nous vous je tu se sa son ses leur leurs mais plus
    """.split()
)

STOPWORDS: dict[str, frozenset[str]] = {
    "english": ENGLISH_STOPWORDS,
    "dutch": DUTCH_STOPWORDS,
    "german": GERMAN_STOPWORDS,
    "french": FRENCH_STOPWORDS,
}


def is_stopword(token: str, language: str = "english") -> bool:
    """Return True if ``token`` (case-insensitive) is a stopword of ``language``."""
    return token.lower() in STOPWORDS.get(language, frozenset())


def stopwords_for(language: str) -> frozenset[str]:
    """Return the stopword set for ``language`` (empty set if unknown)."""
    return STOPWORDS.get(language, frozenset())
