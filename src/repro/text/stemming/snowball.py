"""Simplified Snowball-style stemmers for Dutch, German and French.

The paper plugs "Snowball stemmers for several languages" into the engine.
For the reproduction we provide light-weight suffix-stripping stemmers for
three additional languages.  They follow the structure of the corresponding
Snowball algorithms (R1/R2 regions, ordered suffix classes) but are
intentionally simplified: the goal is to exercise the multi-language code
path of on-demand indexing, not to ship linguistically perfect stemmers.
Each stemmer is deterministic, lower-cases its input, and never lengthens a
token.
"""

from __future__ import annotations

from repro.text.stemming.base import Stemmer

_VOWELS_NL = set("aeiouyè")
_VOWELS_DE = set("aeiouyäöü")
_VOWELS_FR = set("aeiouyâàëéêèïîôûù")


def _r1_start(word: str, vowels: set[str]) -> int:
    """Return the index where the R1 region starts (after the first vowel-consonant pair)."""
    for index in range(len(word) - 1):
        if word[index] in vowels and word[index + 1] not in vowels:
            return index + 2
    return len(word)


class DutchStemmer(Stemmer):
    """Simplified Snowball Dutch stemmer (suffix classes of the official algorithm)."""

    language = "dutch"

    _SUFFIXES = ["heden", "ende", "ende", "en", "ene", "se", "s", "e", "heid"]

    def stem(self, token: str) -> str:
        word = token.lower()
        if len(word) <= 3:
            return word
        r1 = _r1_start(word, _VOWELS_NL)
        for suffix in sorted(self._SUFFIXES, key=len, reverse=True):
            if word.endswith(suffix):
                stem_candidate = word[: len(word) - len(suffix)]
                if len(stem_candidate) >= max(r1 - 1, 3):
                    word = stem_candidate
                    break
        # undouble trailing consonants (bakken -> bak)
        if len(word) >= 2 and word[-1] == word[-2] and word[-1] not in _VOWELS_NL:
            word = word[:-1]
        return word


class GermanStemmer(Stemmer):
    """Simplified Snowball German stemmer."""

    language = "german"

    _SUFFIXES = ["ern", "em", "er", "en", "es", "e", "s", "heit", "keit", "ung", "isch", "lich"]

    def stem(self, token: str) -> str:
        word = token.lower().replace("ß", "ss")
        if len(word) <= 3:
            return word
        r1 = _r1_start(word, _VOWELS_DE)
        changed = True
        while changed and len(word) > 3:
            changed = False
            for suffix in sorted(self._SUFFIXES, key=len, reverse=True):
                if word.endswith(suffix):
                    stem_candidate = word[: len(word) - len(suffix)]
                    if len(stem_candidate) >= max(r1 - 1, 3):
                        word = stem_candidate
                        changed = True
                        break
            # a single stripping round is sufficient for the simplified variant
            break
        return word


class FrenchStemmer(Stemmer):
    """Simplified Snowball French stemmer."""

    language = "french"

    _SUFFIXES = [
        "issement", "issements", "atrice", "ations", "ation", "ateur", "euses",
        "euse", "ements", "ement", "ments", "ment", "ités", "ité", "ives", "ive",
        "eaux", "aux", "elles", "elle", "es", "e", "s",
    ]

    def stem(self, token: str) -> str:
        word = token.lower()
        if len(word) <= 3:
            return word
        r1 = _r1_start(word, _VOWELS_FR)
        for suffix in sorted(self._SUFFIXES, key=len, reverse=True):
            if word.endswith(suffix):
                stem_candidate = word[: len(word) - len(suffix)]
                if len(stem_candidate) >= max(r1 - 1, 3):
                    word = stem_candidate
                    break
        return word
