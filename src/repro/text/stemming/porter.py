"""The Porter stemming algorithm for English.

A complete implementation of M.F. Porter's 1980 algorithm ("An algorithm for
suffix stripping"), which is the basis of the Snowball English stemmer the
paper plugs into MonetDB.  The implementation follows the original five-step
description; steps are kept as separate methods so each can be unit-tested
against the published examples.
"""

from __future__ import annotations

from functools import lru_cache

from repro.text.stemming.base import Stemmer

_VOWELS = set("aeiou")

#: size of the per-instance stem memo; index builds see far fewer distinct
#: tokens than occurrences, so a bounded LRU captures nearly all repeats
_STEM_CACHE_SIZE = 65536


class PorterStemmer(Stemmer):
    """English suffix-stripping stemmer (Porter, 1980).

    Stemming is deterministic, so results are memoized per instance with a
    bounded LRU cache: index builds stem every token occurrence, and the
    distinct-token count is orders of magnitude below the occurrence count.
    """

    language = "english"

    def __init__(self) -> None:
        self.stem = lru_cache(maxsize=_STEM_CACHE_SIZE)(self._stem_uncached)

    # -- public API -----------------------------------------------------------

    def _stem_uncached(self, token: str) -> str:
        word = token.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- measure and conditions ------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, index: int) -> bool:
        letter = word[index]
        if letter in _VOWELS:
            return False
        if letter == "y":
            if index == 0:
                return True
            return not PorterStemmer._is_consonant(word, index - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """Return m, the number of VC sequences in the stem."""
        forms = []
        for index in range(len(stem)):
            forms.append("c" if cls._is_consonant(stem, index) else "v")
        collapsed = "".join(forms)
        # collapse runs of identical letters
        compact = []
        for letter in collapsed:
            if not compact or compact[-1] != letter:
                compact.append(letter)
        pattern = "".join(compact)
        if pattern.startswith("c"):
            pattern = pattern[1:]
        if pattern.endswith("v"):
            pattern = pattern[:-1]
        return pattern.count("vc")

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, index) for index in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        if len(word) < 2:
            return False
        return word[-1] == word[-2] and cls._is_consonant(word, len(word) - 1)

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        if len(word) < 3:
            return False
        c1 = cls._is_consonant(word, len(word) - 3)
        v = not cls._is_consonant(word, len(word) - 2)
        c2 = cls._is_consonant(word, len(word) - 1)
        return c1 and v and c2 and word[-1] not in "wxy"

    # -- step helpers -----------------------------------------------------------

    def _replace_suffix(
        self, word: str, suffix: str, replacement: str, min_measure: int
    ) -> str | None:
        """If ``word`` ends with ``suffix`` and the stem has measure > ``min_measure``,
        return the word with the suffix replaced, otherwise ``None``."""
        if not word.endswith(suffix):
            return None
        stem = word[: len(word) - len(suffix)]
        if self._measure(stem) > min_measure:
            return stem + replacement
        return word

    # -- the five steps -----------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed"):
            stem = word[:-2]
            if self._contains_vowel(stem):
                word = stem
                flag = True
        elif word.endswith("ing"):
            stem = word[:-3]
            if self._contains_vowel(stem):
                word = stem
                flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = [
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ]

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_SUFFIXES = [
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ]

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = [
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ]

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if suffix == "ion":
                    continue
                if self._measure(stem) > 1:
                    return stem
                return word
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in ("s", "t") and self._measure(stem) > 1:
                return stem
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            measure = self._measure(stem)
            if measure > 1:
                return stem
            if measure == 1 and not self._ends_cvc(stem):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if self._measure(word) > 1 and self._ends_double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word
