"""Stemmer registry: "Snowball stemmers for several languages".

The registry maps language names (``"english"``, ``"dutch"``, ``"german"``,
``"french"``, ``"none"``) to stemmer instances.  The SQL-level ``stem``
user-defined function accepts the paper's ``'sb-<language>'`` spelling and
strips the prefix before consulting this registry.
"""

from __future__ import annotations

from repro.errors import UnknownLanguageError
from repro.text.stemming.base import IdentityStemmer, Stemmer
from repro.text.stemming.porter import PorterStemmer
from repro.text.stemming.snowball import DutchStemmer, FrenchStemmer, GermanStemmer

_REGISTRY: dict[str, Stemmer] = {
    "english": PorterStemmer(),
    "porter": PorterStemmer(),
    "dutch": DutchStemmer(),
    "german": GermanStemmer(),
    "french": FrenchStemmer(),
    "none": IdentityStemmer(),
}


def available_languages() -> list[str]:
    """Return the sorted list of registered stemmer languages."""
    return sorted(_REGISTRY)


def get_stemmer(language: str) -> Stemmer:
    """Return the stemmer registered for ``language``.

    Accepts both plain language names and the paper's ``sb-<language>``
    spelling used in SQL (e.g. ``stem(token, 'sb-english')``).
    """
    name = language.lower()
    if name.startswith("sb-"):
        name = name[3:]
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownLanguageError(
            f"no stemmer registered for language {language!r}; "
            f"available: {available_languages()}"
        ) from None


def register_stemmer(language: str, stemmer: Stemmer) -> None:
    """Register (or replace) a stemmer under ``language``."""
    _REGISTRY[language.lower()] = stemmer


def stem(token: str, language: str = "english") -> str:
    """Stem ``token`` with the stemmer registered for ``language``."""
    return get_stemmer(language).stem(token)


__all__ = [
    "DutchStemmer",
    "FrenchStemmer",
    "GermanStemmer",
    "IdentityStemmer",
    "PorterStemmer",
    "Stemmer",
    "available_languages",
    "get_stemmer",
    "register_stemmer",
    "stem",
]
