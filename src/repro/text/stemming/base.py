"""Stemmer interface and trivial implementations."""

from __future__ import annotations


class Stemmer:
    """Base class: maps an inflected token to its stem."""

    #: human-readable language name of the stemmer
    language = "unknown"

    def stem(self, token: str) -> str:
        """Return the stem of ``token``.  Must be deterministic and idempotent-safe."""
        raise NotImplementedError

    def stem_all(self, tokens: list[str]) -> list[str]:
        """Stem a list of tokens (convenience for analyzers)."""
        return [self.stem(token) for token in tokens]


class IdentityStemmer(Stemmer):
    """A no-op stemmer (language ``"none"``): returns tokens unchanged.

    Useful when the indexing parameters of a scenario call for raw terms, and
    as the baseline in the stemming ablation benchmark.
    """

    language = "none"

    def stem(self, token: str) -> str:
        return token
