"""A configurable text tokenizer.

This is the reproduction's counterpart of the ``tokenize`` user-defined
function the paper adds to MonetDB.  The default configuration splits on
non-alphanumeric characters, lower-casing being left to the ``lcase`` step of
the SQL pipeline (so the SQL listings of Section 2.1 remain faithful); the
tokenizer can optionally lowercase, keep numbers, and enforce minimum /
maximum token lengths.
"""

from __future__ import annotations

import re
from collections.abc import Iterator

from repro.errors import TextAnalysisError


class Tokenizer:
    """Splits raw text into a stream of tokens.

    Parameters
    ----------
    lowercase:
        If True the tokenizer lower-cases tokens itself.  The default is
        False because the paper applies ``lcase`` as a separate SQL step.
    keep_numbers:
        If False, purely numeric tokens are dropped.
    min_length / max_length:
        Tokens shorter than ``min_length`` or longer than ``max_length`` are
        dropped.  ``max_length`` of ``None`` means unbounded.
    """

    _WORD_PATTERN = re.compile(r"[A-Za-z0-9]+(?:'[A-Za-z]+)?")

    def __init__(
        self,
        *,
        lowercase: bool = False,
        keep_numbers: bool = True,
        min_length: int = 1,
        max_length: int | None = None,
    ):
        if min_length < 1:
            raise TextAnalysisError("min_length must be at least 1")
        if max_length is not None and max_length < min_length:
            raise TextAnalysisError("max_length must be >= min_length")
        self.lowercase = lowercase
        self.keep_numbers = keep_numbers
        self.min_length = min_length
        self.max_length = max_length

    def tokenize(self, text: str) -> list[str]:
        """Return the list of tokens in ``text``, in document order."""
        return list(self.iter_tokens(text))

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield tokens one at a time (document order)."""
        for match in self._WORD_PATTERN.finditer(text):
            token = match.group(0)
            if self.lowercase:
                token = token.lower()
            if not self.keep_numbers and token.isdigit():
                continue
            if len(token) < self.min_length:
                continue
            if self.max_length is not None and len(token) > self.max_length:
                continue
            yield token

    def tokenize_with_positions(self, text: str) -> list[tuple[str, int]]:
        """Return ``(token, position)`` pairs, positions counted in tokens."""
        return [(token, position) for position, token in enumerate(self.iter_tokens(text))]
