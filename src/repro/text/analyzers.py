"""Analyzer pipelines: tokenize → lowercase → (stopwords) → stem.

An :class:`Analyzer` bundles the text-normalisation parameters of a search
scenario — the parameters the paper says are "often hard to decide upfront"
and therefore applied on demand at indexing/query time rather than at load
time.  The IR layer takes an analyzer and builds index relations from raw
text using it, so switching stemming language or stopword policy never
requires reloading data.
"""

from __future__ import annotations

from repro.errors import TextAnalysisError
from repro.text.stemming import get_stemmer
from repro.text.stemming.base import Stemmer
from repro.text.stopwords import stopwords_for
from repro.text.tokenizer import Tokenizer


class Analyzer:
    """A configurable text-to-terms pipeline."""

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        stemmer: Stemmer | None = None,
        *,
        lowercase: bool = True,
        remove_stopwords: bool = False,
        stopword_language: str = "english",
    ):
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.stemmer = stemmer
        self.lowercase = lowercase
        self.remove_stopwords = remove_stopwords
        self._stopwords = stopwords_for(stopword_language) if remove_stopwords else frozenset()

    def analyze(self, text: str) -> list[str]:
        """Return the normalised terms of ``text``, in document order."""
        terms: list[str] = []
        for token in self.tokenizer.iter_tokens(text):
            if self.lowercase:
                token = token.lower()
            if self.remove_stopwords and token in self._stopwords:
                continue
            if self.stemmer is not None:
                token = self.stemmer.stem(token)
            if token:
                terms.append(token)
        return terms

    def analyze_query(self, query: str) -> list[str]:
        """Analyze a query string (same pipeline as documents, per the paper)."""
        return self.analyze(query)

    def describe(self) -> dict[str, object]:
        """Return the analyzer configuration as a plain dictionary."""
        return {
            "lowercase": self.lowercase,
            "remove_stopwords": self.remove_stopwords,
            "stemmer": self.stemmer.language if self.stemmer is not None else "none",
        }


class StandardAnalyzer(Analyzer):
    """The default pipeline of the paper's toy scenario.

    Lower-cases, keeps stopwords (IDF handles them), and applies the Snowball
    stemmer for the given language — equivalent to the SQL expression
    ``stem(lcase(token), 'sb-english')`` of Section 2.1.
    """

    def __init__(self, language: str = "english", *, remove_stopwords: bool = False):
        if not language:
            raise TextAnalysisError("language must be a non-empty string")
        stemmer = get_stemmer(language) if language != "none" else None
        super().__init__(
            tokenizer=Tokenizer(),
            stemmer=stemmer,
            lowercase=True,
            remove_stopwords=remove_stopwords,
            stopword_language=language,
        )
        self.language = language
