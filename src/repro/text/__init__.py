"""Text analysis substrate: tokenization, stopwords, stemming, analyzers.

Section 2.1 of the paper states that the only additions needed to the
database engine for on-demand indexing were *a text tokenizer* and *Snowball
stemmers for several languages*.  This package provides those components for
the reproduction's engine, plus the analyzer pipelines the IR layer uses to
turn raw text into normalised term streams at query time (no pre-processing
of the stored data).
"""

from repro.text.analyzers import Analyzer, StandardAnalyzer
from repro.text.stemming import available_languages, get_stemmer, stem
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.tokenizer import Tokenizer

__all__ = [
    "Analyzer",
    "STOPWORDS",
    "StandardAnalyzer",
    "Tokenizer",
    "available_languages",
    "get_stemmer",
    "is_stopword",
    "stem",
]
