"""The blueprint manager: planned transitions between serving layouts.

Online re-sharding follows the blueprint pattern: the **current** serving
configuration keeps answering queries while the **next** one (a different
shard count over the same immutable snapshot data) is built in the
background; the cut-over is a single atomic swap of the engine's executor,
carrying a monotonically-versioned shard map (its **epoch**).  In-flight
requests drain on the old epoch's executor — the engine's lease accounting
closes it only after the last one finishes — and every request admitted
after the swap routes on the new epoch.  No downtime, and bit-identical
results throughout: both layouts partition the same rows and the gather
step reconstructs original row order regardless of the shard count (the
Hypothesis shard-equivalence suite enforces this across a mid-stream
swap).

:class:`BlueprintManager` owns the transition: it serializes concurrent
reshard attempts behind a lock, builds the new layout via
:meth:`~repro.storage.shards.ShardMap.with_layout`, mirrors the engine's
current executor kind and :class:`~repro.serving.config.ServingConfig`
for the replacement executor, and reports ``reshard-start`` /
``blueprint-swap`` events into the workload log.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import EngineError
from repro.serving.config import ServingConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import Engine
    from repro.storage.shards import ShardMap


class Blueprint:
    """One planned serving configuration: a versioned layout + executor kind."""

    def __init__(self, shard_map: "ShardMap", executor: str, config: ServingConfig):
        self.shard_map = shard_map
        self.executor = executor
        self.config = config

    @property
    def epoch(self) -> int:
        return self.shard_map.epoch

    def describe(self) -> dict[str, Any]:
        return {
            "epoch": self.shard_map.epoch,
            "shards": self.shard_map.num_shards,
            "executor": self.executor,
            "path": str(self.shard_map.path),
        }


class BlueprintManager:
    """Builds and atomically installs successor serving layouts for an engine."""

    def __init__(self, engine: "Engine"):
        self._engine = engine
        # one transition at a time; queries are never blocked by this lock
        self._transition_lock = threading.Lock()

    # -- introspection -----------------------------------------------------------

    def current(self) -> Blueprint:
        """The blueprint the engine is serving right now."""
        executor = self._engine._plan_executor
        shard_map = getattr(executor, "shard_map", None)
        if shard_map is None:
            raise EngineError(
                "the engine has no shard map; open the snapshot with "
                "Engine.open_sharded to manage blueprints"
            )
        config = self._engine._serving_config or ServingConfig()
        return Blueprint(shard_map, executor.kind, config)

    # -- transitions -------------------------------------------------------------

    def build_layout(self, shards: int, out: str | Path | None = None) -> "ShardMap":
        """Materialize the current snapshot as a ``shards``-shard layout.

        Pure background work: serving traffic keeps flowing on the current
        executor while a private engine re-partitions the immutable
        snapshot.  Returns the new map stamped at ``current epoch + 1``.
        """
        if shards < 1:
            raise EngineError(f"shards must be >= 1, got {shards}")
        current = self.current().shard_map
        if out is None:
            out = current.path.parent / (
                f"{current.path.name}-epoch{current.epoch + 1:04d}-{shards}shards"
            )
        return current.with_layout(shards, out)

    def swap_to(
        self, shard_map: "ShardMap", *, drain_timeout: float = 30.0
    ) -> dict[str, Any]:
        """Atomically cut serving over to ``shard_map`` (same executor kind).

        Builds the replacement executor (workers boot and memmap before the
        swap, so the new epoch is ready the instant it is installed), then
        swaps it in: new requests route on the new epoch, in-flight
        requests drain on the old, and the old executor closes once
        drained.  Returns a summary of the transition.
        """
        blueprint = self.current()
        old_map = blueprint.shard_map
        if shard_map.epoch <= old_map.epoch:
            raise EngineError(
                f"blueprint epoch must advance: {shard_map.epoch} <= "
                f"current {old_map.epoch}"
            )
        engine = self._engine
        started = time.perf_counter()
        new_executor = engine._build_shard_executor(
            shard_map, blueprint.executor, blueprint.config
        )
        try:
            engine.swap_executor(new_executor, drain_timeout=drain_timeout)
        except BaseException:
            new_executor.close()
            raise
        summary = {
            "from_epoch": old_map.epoch,
            "to_epoch": shard_map.epoch,
            "from_shards": old_map.num_shards,
            "to_shards": shard_map.num_shards,
            "executor": blueprint.executor,
            "path": str(shard_map.path),
            "swap_seconds": time.perf_counter() - started,
        }
        engine._log_serving_event("blueprint-swap", summary)
        return summary

    def reshard(
        self,
        shards: int,
        *,
        out: str | Path | None = None,
        drain_timeout: float = 30.0,
    ) -> dict[str, Any]:
        """Build an N′-shard layout in the background, then swap it in live."""
        with self._transition_lock:
            current = self.current()
            self._engine._log_serving_event(
                "reshard-start",
                {
                    "from_epoch": current.epoch,
                    "from_shards": current.shard_map.num_shards,
                    "to_shards": shards,
                },
            )
            new_map = self.build_layout(shards, out)
            return self.swap_to(new_map, drain_timeout=drain_timeout)
