"""The unified serving configuration: one frozen dataclass for every knob.

The serving surface grew one keyword argument at a time — ``transport`` and
``shm_threshold`` on :class:`~repro.serving.pool.WorkerPool`, ``workers``
on ``Engine.open_sharded``, admission limits on
:class:`~repro.serving.router.Router`, and now replication and
self-healing knobs — until the same deployment decision was spread across
four call sites.  :class:`ServingConfig` collects all of them:

* **pool** — ``workers``, ``replicas``, ``mmap``, ``start_method``,
  ``transport``, ``shm_threshold``;
* **self-healing** — ``restart_workers``, ``health_interval_seconds``,
  ``max_restarts``, ``restart_backoff_seconds`` (doubled per consecutive
  restart, capped at ``restart_backoff_cap_seconds``), ``retry_budget``
  (failover re-routes per request beyond the first attempt);
* **micro-batching** — ``max_batch_size`` (requests coalesced into one
  pipe write while a worker connection is busy; 1 disables),
  ``max_batch_delay_ms`` (optional straggler wait for short batches),
  ``collapse_requests`` (identical in-flight router requests share one
  execution);
* **admission** — ``max_concurrent``, ``max_queue``;
* **HTTP** — ``host``, ``port``.

Every serving entry point accepts ``config=ServingConfig(...)``; the old
per-call keyword arguments keep working through :func:`resolve_config`,
which maps them onto a config and emits **one** :class:`DeprecationWarning`
per entry point per process (the shim policy is documented in
``repro.__init__``).  ``from_cli_args`` / ``to_dict`` / ``from_dict``
round-trip the config through the CLI and JSON.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import asdict, dataclass, fields, replace
from typing import Any

from repro.errors import EngineError

#: sentinel distinguishing "caller did not pass this kwarg" from any value
UNSET: Any = object()

TRANSPORTS = ("auto", "shm", "inline")


@dataclass(frozen=True)
class ServingConfig:
    """Every serving knob, validated once, threaded through all entry points."""

    # -- worker pool ------------------------------------------------------------
    workers: int | None = None  # base workers per replica; None = one per shard
    replicas: int = 1  # workers serving each shard (failover needs >= 2)
    mmap: bool = True
    start_method: str = "spawn"
    transport: str = "auto"  # "auto" | "shm" | "inline"
    shm_threshold: int | None = None

    # -- self-healing -----------------------------------------------------------
    restart_workers: bool = True
    health_interval_seconds: float = 0.5
    max_restarts: int = 5  # per worker slot, per pool lifetime
    restart_backoff_seconds: float = 0.25
    restart_backoff_cap_seconds: float = 10.0
    retry_budget: int = 2  # failover re-routes per request beyond the first try

    # -- micro-batching ---------------------------------------------------------
    max_batch_size: int = 1  # > 1 coalesces co-arriving requests per pipe write
    max_batch_delay_ms: float = 0.0  # extra wait for stragglers when a batch is short
    collapse_requests: bool = True  # identical in-flight requests share one execution

    # -- router admission -------------------------------------------------------
    max_concurrent: int = 4
    max_queue: int = 64

    # -- HTTP front end ---------------------------------------------------------
    host: str = "127.0.0.1"
    port: int = 8080

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise EngineError(f"workers must be >= 1 or None, got {self.workers}")
        if self.replicas < 1:
            raise EngineError(f"replicas must be >= 1, got {self.replicas}")
        if self.transport not in TRANSPORTS:
            raise EngineError(
                f"unknown transport {self.transport!r}; use one of {TRANSPORTS}"
            )
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise EngineError(
                f"unknown start_method {self.start_method!r}; "
                "use 'spawn', 'fork' or 'forkserver'"
            )
        if self.shm_threshold is not None and self.shm_threshold < 0:
            raise EngineError(f"shm_threshold must be >= 0, got {self.shm_threshold}")
        if self.health_interval_seconds <= 0:
            raise EngineError(
                f"health_interval_seconds must be > 0, got {self.health_interval_seconds}"
            )
        if self.max_restarts < 0:
            raise EngineError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.restart_backoff_seconds < 0:
            raise EngineError(
                f"restart_backoff_seconds must be >= 0, got {self.restart_backoff_seconds}"
            )
        if self.restart_backoff_cap_seconds < self.restart_backoff_seconds:
            raise EngineError(
                "restart_backoff_cap_seconds must be >= restart_backoff_seconds"
            )
        if self.retry_budget < 0:
            raise EngineError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if self.max_batch_size < 1:
            raise EngineError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_batch_delay_ms < 0:
            raise EngineError(
                f"max_batch_delay_ms must be >= 0, got {self.max_batch_delay_ms}"
            )
        if self.max_concurrent < 1:
            raise EngineError(f"max_concurrent must be >= 1, got {self.max_concurrent}")
        if self.max_queue < 0:
            raise EngineError(f"max_queue must be >= 0, got {self.max_queue}")
        if not 0 <= self.port <= 65535:
            raise EngineError(f"port must be in [0, 65535], got {self.port}")

    # -- round trips ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe dict; :meth:`from_dict` reconstructs an equal config."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ServingConfig":
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise EngineError(f"unknown ServingConfig fields: {unknown}")
        return cls(**payload)

    @classmethod
    def from_cli_args(cls, args: Any) -> "ServingConfig":
        """Build a config from an argparse namespace (the ``serve`` subcommand).

        Only attributes present on the namespace override the defaults, so
        subcommands with partial serving surfaces (``reshard``) reuse this.
        """
        overrides: dict[str, Any] = {}
        for field in fields(cls):
            value = getattr(args, field.name, None)
            if value is not None:
                overrides[field.name] = value
        # `--workers 0` means "in-process sharded executor" on the CLI; the
        # pool itself never sees workers=0 (the CLI picks the executor kind)
        if overrides.get("workers") == 0:
            overrides["workers"] = None
        return cls(**overrides)

    def with_overrides(self, **overrides: Any) -> "ServingConfig":
        """A copy with ``overrides`` applied (re-validated)."""
        return replace(self, **overrides)


# ---------------------------------------------------------------------------
# the legacy-kwarg deprecation shim
# ---------------------------------------------------------------------------

_warned_entry_points: set[str] = set()
_warn_lock = threading.Lock()


def _warn_legacy(entry_point: str, names: list[str]) -> None:
    """Warn exactly once per entry point per process about legacy kwargs."""
    with _warn_lock:
        if entry_point in _warned_entry_points:
            return
        _warned_entry_points.add(entry_point)
    warnings.warn(
        f"{entry_point} keyword argument(s) {', '.join(sorted(names))} are "
        "deprecated since 1.7; pass config=ServingConfig(...) instead "
        "(the legacy values are mapped onto the config unchanged)",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_config(
    config: ServingConfig | None, legacy: dict[str, Any], entry_point: str
) -> ServingConfig:
    """Merge legacy keyword arguments into ``config`` with a one-time warning.

    ``legacy`` maps field names to values where :data:`UNSET` marks "not
    passed".  Passing both ``config`` and a legacy kwarg is ambiguous (which
    wins?) and raises instead of guessing.
    """
    supplied = {name: value for name, value in legacy.items() if value is not UNSET}
    if config is not None and supplied:
        raise EngineError(
            f"{entry_point} received both config=ServingConfig(...) and legacy "
            f"keyword argument(s) {sorted(supplied)}; put the values on the config"
        )
    if config is not None:
        return config
    if supplied:
        _warn_legacy(entry_point, sorted(supplied))
        return ServingConfig(**supplied)
    return ServingConfig()
