"""An asyncio HTTP/1.1 front end over the router's admission queue.

The original front end was a ``ThreadingHTTPServer`` — one OS thread per
connection, spawned at accept time, which under concurrent load costs a
thread stack and a scheduler entry per idle keep-alive connection.  This
module replaces it with a single-threaded asyncio accept/parse loop:
connections are coroutines (cheap, no stack per connection), requests are
parsed and **admission-checked on the event loop**, and only admitted work
crosses into a small thread pool where the blocking engine call runs.

Overload therefore sheds at the socket, immediately: a ``503`` is written
without ever touching the executor, so a flood of requests cannot exhaust
threads before the admission queue says no — the failure the old
thread-per-connection design had by construction.

The public surface mimics exactly the ``ThreadingHTTPServer`` contract the
CLI, tests and smoke scripts already use: :attr:`server_address` is
resolved at construction (so ``port=0`` callers learn the bound port before
starting), :meth:`serve_forever` blocks the calling thread,
:meth:`shutdown` (thread-safe) stops the loop and waits for it, and
:meth:`server_close` releases the listening socket.

Error taxonomy (mirrors :class:`~repro.serving.router.Router`):

* ``400`` — client errors: malformed JSON, a malformed ``Content-Length``
  header, missing required fields (named in the error)
* ``404`` — unknown path
* ``413`` — request body larger than :data:`MAX_BODY_BYTES`
* ``503`` — admission queue full (shed before execution)
* ``500`` — unexpected engine-side failures
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.router import Router

#: request bodies above this are refused with a 413 before being read
MAX_BODY_BYTES = 64 * 1024 * 1024

#: maximum size of the request line + headers block
MAX_HEADER_BYTES = 64 * 1024


class AsyncHTTPFrontEnd:
    """Asyncio HTTP server with a ``ThreadingHTTPServer``-shaped facade."""

    def __init__(
        self,
        router: "Router",
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        max_workers: int | None = None,
    ):
        self._router = router
        # bind synchronously so port=0 resolves before serve_forever starts
        self._socket = socket.create_server((host, port), backlog=128)
        self.server_address = self._socket.getsockname()[:2]
        # size the blocking-call pool from the deployment's ServingConfig:
        # max_concurrent admitted requests plus slack for /healthz and /statz
        # probes, which must keep answering while every slot is busy, and for
        # collapse followers, which wait on a leader's future without holding
        # an execution slot but do occupy a pool thread
        configured = getattr(router, "config", None)
        admitted = configured.max_concurrent if configured is not None else router.max_concurrent
        workers = max_workers if max_workers is not None else admitted + 4
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, workers), thread_name_prefix="repro-serve"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._finished = threading.Event()
        self._closed = False

    # -- lifecycle (the ThreadingHTTPServer contract) -----------------------------

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread until :meth:`shutdown`."""
        asyncio.run(self._main())

    def shutdown(self) -> None:
        """Stop the accept loop from any thread; blocks until it exits."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not self._finished.is_set():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._started.is_set():
            self._finished.wait(timeout=10.0)

    def server_close(self) -> None:
        """Release the listening socket and the worker threads."""
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._executor.shutdown(wait=False)

    # -- the event loop -----------------------------------------------------------

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection, sock=self._socket, limit=MAX_HEADER_BYTES
        )
        self._started.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self._finished.set()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._serve_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Parse and answer one request; returns whether to keep the connection."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as partial:
            if partial.partial:
                raise  # mid-request EOF: drop the connection
            return False  # clean close between requests
        except asyncio.LimitOverrunError:
            await self._respond(
                writer,
                {"ok": False, "status": 400, "error": "request headers too large"},
                keep_alive=False,
            )
            return False
        try:
            method, path, headers = _parse_head(head)
        except ValueError as error:
            await self._respond(
                writer, {"ok": False, "status": 400, "error": str(error)}, keep_alive=False
            )
            return False
        keep_alive = headers.get("connection", "").lower() != "close"

        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError:
            # a malformed header is a client error, not a server crash
            await self._respond(
                writer,
                {
                    "ok": False,
                    "status": 400,
                    "error": f"malformed Content-Length header: {raw_length!r}",
                },
                keep_alive=False,
            )
            return False
        if length > MAX_BODY_BYTES:
            await self._respond(
                writer,
                {
                    "ok": False,
                    "status": 413,
                    "error": f"request body of {length} bytes exceeds {MAX_BODY_BYTES}",
                },
                keep_alive=False,
            )
            return False
        body = await reader.readexactly(length) if length else b""

        payload = await self._route(method, path, body)
        await self._respond(writer, payload, keep_alive=keep_alive)
        return keep_alive

    async def _route(self, method: str, path: str, body: bytes) -> dict[str, Any]:
        from repro.serving.router import _jsonable

        router = self._router
        loop = asyncio.get_running_loop()
        if method == "GET" and path == "/healthz":
            return _jsonable(await loop.run_in_executor(self._executor, router.health))
        if method == "GET" and path == "/statz":
            return _jsonable(await loop.run_in_executor(self._executor, router.stats))
        if method == "POST" and path == "/query":
            try:
                request = json.loads(body or b"{}")
            except json.JSONDecodeError as error:
                return {"ok": False, "status": 400, "error": f"invalid JSON: {error}"}
            if not isinstance(request, dict):
                return {
                    "ok": False,
                    "status": 400,
                    "error": "request body must be a JSON object",
                }
            # admission happens here, on the event loop: overload is answered
            # with a 503 without consuming an executor thread
            if not router._admit():
                return router._overloaded()
            return await loop.run_in_executor(
                self._executor, router._run_admitted, request
            )
        return {"ok": False, "status": 404, "error": "unknown path"}

    async def _respond(
        self, writer: asyncio.StreamWriter, payload: dict[str, Any], *, keep_alive: bool
    ) -> None:
        status = payload.get("status", 200) if not payload.get("ok") else 200
        body = json.dumps(payload).encode("utf-8")
        # shed responses tell well-behaved clients (including the replay
        # load generator) when to come back instead of hammering the queue
        retry_after = "Retry-After: 1\r\n" if status == 503 else ""
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{retry_after}"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n"
            ).encode("ascii")
            + body
        )
        await writer.drain()


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
    """Parse the request line + headers; raises ``ValueError`` on malformed input."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 never fails
        raise ValueError(f"undecodable request head: {error}") from error
    lines = text.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ValueError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, path, headers
