"""The router: admission control plus an asyncio HTTP front end.

A :class:`Router` owns one engine — typically opened with
``Engine.open_sharded(path, executor="pool")`` so queries scatter across
the worker pool — and exposes two surfaces:

* :meth:`Router.handle` — the in-process request API: one JSON-shaped dict
  in, one JSON-shaped dict out.  Requests pass an **admission queue**: at
  most ``max_concurrent`` requests execute at once and at most
  ``max_queue`` may wait; beyond that the router sheds load with a
  ``503``-shaped refusal instead of queueing unboundedly.
* :meth:`Router.serve` / :meth:`Router.start` — an asyncio HTTP server
  (:class:`~repro.serving.frontend.AsyncHTTPFrontEnd`, standard library
  only): ``POST /query`` with a JSON request body, ``GET /healthz``
  reporting admission-queue depth, worker liveness and cache counters, and
  ``GET /statz`` serving the engine's workload-log summary (hot
  fingerprints, latency percentiles, cache hit rates).  Parsing and
  admission run on the event loop; only admitted requests occupy an
  executor thread.

Every handled request is appended to the engine's workload log as a
``serve`` record carrying the request payload itself, so a router's traffic
can be replayed or synthesized into load by :mod:`repro.workload.replay`.

Request kinds::

    {"kind": "search", "table": "docs", "query": "wooden train",
     "top_k": 10, "model": {"model": "bm25", "k1": 1.2, "b": 0.75}}
    {"kind": "spinql", "source": "out = ...;", "top_k": 10}
    {"kind": "info"}

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": ...,
"status": <http-ish code>}``; the HTTP layer maps ``status`` onto the
response code.  The taxonomy is strict: **400** for anything the client
got wrong (malformed JSON or ``Content-Length``, a missing ``query`` /
``source`` field, an unknown model or request kind, a plan that fails
static verification), **503** for admission-queue overload, and **500**
only for genuinely unexpected engine-side failures.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.engine.executors import model_from_descriptor
from repro.engine.query import result_pairs
from repro.errors import ReproError
from repro.serving.config import UNSET, ServingConfig, resolve_config

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import Engine
    from repro.serving.frontend import AsyncHTTPFrontEnd


class Router:
    """Admission-controlled request dispatch over one (sharded) engine."""

    def __init__(
        self,
        engine: "Engine",
        config: ServingConfig | None = None,
        *,
        max_concurrent: int = UNSET,
        max_queue: int = UNSET,
    ):
        if config is None and engine is not None:
            # an engine opened with open_sharded(config=...) carries the
            # deployment's config; reuse it unless the caller overrides
            carried = getattr(engine, "_serving_config", None)
            if carried is not None and max_concurrent is UNSET and max_queue is UNSET:
                config = carried
        config = resolve_config(
            config,
            {"max_concurrent": max_concurrent, "max_queue": max_queue},
            "Router",
        )
        self.config = config
        self.engine = engine
        self.max_concurrent = config.max_concurrent
        self.max_queue = config.max_queue
        self._execution_slots = threading.BoundedSemaphore(config.max_concurrent)
        self._admitted = 0
        self._admitted_lock = threading.Lock()
        self._served = 0
        self._shed = 0
        # in-flight request collapsing: identical concurrent requests attach
        # to the first runner's future instead of re-executing
        self._inflight: dict[str, _Inflight] = {}
        self._inflight_lock = threading.Lock()
        self._collapse_hits = 0
        self._collapse_leaders = 0

    # -- admission ----------------------------------------------------------------

    def _admit(self) -> bool:
        with self._admitted_lock:
            if self._admitted >= self.max_concurrent + self.max_queue:
                self._shed += 1
                return False
            self._admitted += 1
            return True

    def _release(self) -> None:
        with self._admitted_lock:
            self._admitted -= 1
            self._served += 1

    def statistics(self) -> dict[str, Any]:
        with self._inflight_lock:
            collapse_hits = self._collapse_hits
            collapse_leaders = self._collapse_leaders
        with self._admitted_lock:
            return {
                "in_flight": self._admitted,
                "served": self._served,
                "shed": self._shed,
                "queue_depth": max(0, self._admitted - self.max_concurrent),
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "collapse_hits": collapse_hits,
                "collapse_leaders": collapse_leaders,
            }

    # -- introspection ------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` payload: admission, liveness and cache counters."""
        engine = self.engine
        result_cache = engine.result_cache
        executor = engine._plan_executor.health()
        return {
            "ok": True,
            "executor": executor,
            # degraded = serving with fewer live replicas than configured
            # (a worker is dead, restarting, or failed); clients keep
            # getting answers via failover while the supervisor heals
            "degraded": bool(executor.get("replication", {}).get("degraded", False)),
            "router": self.statistics(),
            "plan_cache": engine.plan_cache.statistics.to_dict(),
            "result_cache": result_cache.statistics.to_dict() if result_cache else None,
        }

    def stats(self) -> dict[str, Any]:
        """The ``/statz`` payload: the workload-log summary plus router counters."""
        executor = self.engine._plan_executor.health()
        return {
            "ok": True,
            "workload": self.engine.workload_log.summary(),
            "router": self.statistics(),
            "degraded": bool(executor.get("replication", {}).get("degraded", False)),
            "replication": executor.get("replication"),
            "batching": executor.get("batching"),
        }

    # -- request handling ---------------------------------------------------------

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one request dict; never raises for request-level errors."""
        if not self._admit():
            return self._overloaded()
        return self._run_admitted(request)

    def _overloaded(self) -> dict[str, Any]:
        return {
            "ok": False,
            "status": 503,
            "error": (
                f"router overloaded: {self.max_concurrent} in flight plus "
                f"{self.max_queue} queued"
            ),
        }

    def _collapse_key(self, request: dict[str, Any]) -> str | None:
        """The in-flight collapse key of ``request``, or ``None`` if exempt.

        Only deterministic, repeatable kinds collapse (``search`` and
        ``spinql`` — the plan/binding fingerprint is the canonical request
        payload itself); ``info`` and unknown kinds always run alone.
        """
        if not self.config.collapse_requests:
            return None
        if request.get("kind") not in ("search", "spinql"):
            return None
        try:
            canonical = json.dumps(request, sort_keys=True, default=str)
        except Exception:  # noqa: BLE001 - unhashable payloads run alone
            return None
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()

    def _run_admitted(self, request: dict[str, Any]) -> dict[str, Any]:
        """Execute a request that already holds an admission slot.

        Split from :meth:`handle` so the asyncio front end can admit (and
        shed) on the event loop and push only admitted work onto executor
        threads.  Callers must have taken a slot via ``_admit``; this
        method always releases it.

        Identical concurrent requests collapse: the first to run becomes the
        *leader* and executes normally; later arrivals with the same
        canonical payload become *followers* that wait on the leader's
        future without occupying an execution slot (the leader already holds
        a thread, so followers can never starve it).  Every request —
        leader and follower alike — still records its own workload entry.
        """
        started = time.perf_counter()
        key = self._collapse_key(request)
        entry: _Inflight | None = None
        if key is not None:
            with self._inflight_lock:
                entry = self._inflight.get(key)
                if entry is None:
                    self._inflight[key] = entry = _Inflight()
                else:
                    entry.followers += 1
                    self._collapse_hits += 1
                    follower_of = entry
                    entry = None
            if entry is None:
                reply = follower_of.future.result()
                self._release()
                self._record(request, reply, started, collapsed="follower")
                return reply
        reply: dict[str, Any] | None = None
        followers = 0
        try:
            try:
                with self._execution_slots:
                    reply = self._dispatch(request)
            except ReproError as error:
                reply = {"ok": False, "status": 400, "error": str(error)}
            except Exception as error:  # noqa: BLE001 - the router must not die
                reply = {
                    "ok": False,
                    "status": 500,
                    "error": f"{type(error).__name__}: {error}",
                }
        finally:
            self._release()
            if entry is not None:
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                    followers = entry.followers
                    if followers:
                        self._collapse_leaders += 1
                if reply is None:  # pragma: no cover - BaseException mid-dispatch
                    reply = {"ok": False, "status": 500, "error": "request aborted"}
                entry.future.set_result(reply)
        self._record(
            request, reply, started, collapsed="leader" if followers else None
        )
        return reply

    def _record(
        self,
        request: dict[str, Any],
        reply: dict[str, Any],
        started: float,
        *,
        collapsed: str | None = None,
    ) -> None:
        """Append a ``serve`` record for this request to the engine's log."""
        try:
            canonical = json.dumps(request, sort_keys=True, default=str)
            self.engine.workload_log.record(
                "serve",
                "serve::" + hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:16],
                (time.perf_counter() - started) * 1000.0,
                rows_out=len(reply.get("results", [])) if reply.get("ok") else None,
                request=request,
                executor=self.engine.executor_info().get("executor"),
                status="ok" if reply.get("ok") else "error",
                collapsed=collapsed,
            )
        except Exception:  # noqa: BLE001 - logging must never fail a request
            pass

    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        kind = request.get("kind")
        if kind == "search":
            return self._handle_search(request)
        if kind == "spinql":
            return self._handle_spinql(request)
        if kind == "info":
            return {
                "ok": True,
                "engine": _jsonable(self.engine.connect_info()),
                "executor": self.engine.executor_info(),
                "router": self.statistics(),
            }
        return {"ok": False, "status": 400, "error": f"unknown request kind {kind!r}"}

    def _handle_search(self, request: dict[str, Any]) -> dict[str, Any]:
        table = request.get("table", "docs")
        query = request.get("query")
        if not isinstance(query, str):
            # a missing field is the client's mistake, not a server fault —
            # it must never surface as a KeyError-shaped 500
            return {
                "ok": False,
                "status": 400,
                "error": "search request is missing the required 'query' field",
            }
        top_k = request.get("top_k")
        descriptor = request.get("model")
        model = model_from_descriptor(descriptor)
        if descriptor is not None and model is None:
            return {
                "ok": False,
                "status": 400,
                "error": f"unknown ranking model {descriptor.get('model')!r}",
            }
        result = self.engine.search(table, query, model=model, top_k=top_k).execute()
        pairs = result.top(top_k) if top_k is not None else result.ranked.as_pairs()
        return {
            "ok": True,
            "query": query,
            "terms": result.query_terms,
            "results": [[doc_id, float(score)] for doc_id, score in pairs],
        }

    def _handle_spinql(self, request: dict[str, Any]) -> dict[str, Any]:
        source = request.get("source")
        if not isinstance(source, str):
            return {
                "ok": False,
                "status": 400,
                "error": "spinql request is missing the required 'source' field",
            }
        top_k = request.get("top_k")
        query = self.engine.spinql(source)
        # pre-dispatch gate: statically verify before the plan ever reaches
        # the executor.  hydrate=False keeps the gate off the disk — snapshot
        # tables carry manifest-declared schemas, so the gate still sees full
        # column/dtype information; anything the catalog genuinely cannot
        # resolve degrades to a warning, never to a false rejection.
        report = query.check(top_k=top_k, hydrate=False)
        if not report.ok:
            return {
                "ok": False,
                "status": 400,
                "error": "plan failed static verification",
                "analysis": report.to_dict(),
            }
        if top_k is not None:
            pairs = query.top(top_k)
        else:
            pairs = result_pairs(query.execute())
        return {
            "ok": True,
            "results": [[_jsonable(item), float(p)] for item, p in pairs],
        }

    # -- the HTTP front end -------------------------------------------------------

    def serve(self, host: str | None = None, port: int | None = None) -> "AsyncHTTPFrontEnd":
        """Build (but do not start) the asyncio HTTP server for this router.

        ``host``/``port`` default to the router's :class:`ServingConfig`.
        The returned object follows the ``ThreadingHTTPServer`` lifecycle
        contract — ``server_address`` (resolved already, so ``port=0``
        works), ``serve_forever()``, thread-safe ``shutdown()``, and
        ``server_close()`` — see
        :class:`~repro.serving.frontend.AsyncHTTPFrontEnd`.
        """
        from repro.serving.frontend import AsyncHTTPFrontEnd

        host = host if host is not None else self.config.host
        port = port if port is not None else self.config.port
        return AsyncHTTPFrontEnd(self, host, port)

    def start(
        self, host: str | None = None, port: int | None = None
    ) -> tuple["AsyncHTTPFrontEnd", threading.Thread]:
        """Start the HTTP server on a daemon thread; returns (server, thread)."""
        server = self.serve(host, port)
        thread = threading.Thread(
            target=server.serve_forever, name="repro-router-http", daemon=True
        )
        thread.start()
        return server, thread

    def close(self) -> None:
        """Close the engine (and with it any worker pool it owns)."""
        self.engine.close()


class _Inflight:
    """One collapsible in-flight execution: the leader's future + follower count."""

    __slots__ = ("future", "followers")

    def __init__(self) -> None:
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.followers = 0


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of engine metadata into JSON-safe values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
