"""The shared-memory result path: big frames travel out-of-band.

The pipe codec (:mod:`repro.serving.codec`) is the right transport for
control traffic — plans, specs, acks — but copying a multi-megabyte packed
relation through a ``multiprocessing`` pipe costs two extra copies and a
system call per chunk.  Workers already memmap their shards; this module
extends the same idea to the *result* path: a worker publishes a large
encoded frame into a :class:`multiprocessing.shared_memory.SharedMemory`
segment and sends only a tiny control frame (segment name + size) over the
pipe.  The consumer attaches, copies the frame out, and unlinks the
segment.

Ownership is strictly one-shot and handed over at publish time: the
*creator* (the worker) unregisters the segment from its own resource
tracker and closes its mapping immediately, so the *consumer* (the pool)
is the sole owner and unlinks after claiming.  A consumer that dies
between publish and claim leaks at most one segment per in-flight request;
``/dev/shm`` is cleaned at reboot and the pool tears workers down before
itself, so the window is tiny.

Everything degrades gracefully: if shared memory is unavailable (exotic
platforms, a full or unmounted ``/dev/shm``, sandboxed processes) the
transport falls back to the inline pipe codec — callers treat a ``None``
control block as "send it inline".
"""

from __future__ import annotations

from typing import Any

from repro.errors import EngineError

#: frames smaller than this stay inline on the pipe (one syscall beats
#: create+map+unlink for small payloads)
SHM_MIN_BYTES = 64 * 1024

_PROBED: bool | None = None


def shared_memory_available() -> bool:
    """Whether this platform can create (POSIX/Windows) shared memory."""
    global _PROBED
    if _PROBED is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _PROBED = True
        except Exception:  # noqa: BLE001 - any failure means "not available"
            _PROBED = False
    return _PROBED


def publish_frame(frame: bytes) -> dict[str, Any] | None:
    """Copy ``frame`` into a fresh segment and hand ownership to the reader.

    Returns the control block to send over the pipe, or ``None`` when
    shared memory is unavailable or creation failed — the caller then falls
    back to sending the frame inline.
    """
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=max(1, len(frame)))
    except Exception:  # noqa: BLE001 - fall back to the inline pipe codec
        return None
    try:
        segment.buf[: len(frame)] = frame
        control = {"name": segment.name, "size": len(frame)}
    except Exception:  # noqa: BLE001 - roll back so nothing leaks
        segment.close()
        try:
            segment.unlink()
        except OSError:
            pass
        return None
    _disown(segment)
    segment.close()
    return control


def claim_frame(control: dict[str, Any]) -> bytes:
    """Attach to a published segment, copy the frame out, and unlink it."""
    from multiprocessing import shared_memory

    try:
        name = control["name"]
        size = int(control["size"])
        segment = shared_memory.SharedMemory(name=name)
    except Exception as error:  # noqa: BLE001 - surface as a protocol error
        raise EngineError(f"invalid shared-memory control block {control!r}: {error}") from error
    try:
        if size > segment.size:
            raise EngineError(
                f"shared-memory control block claims {size} bytes but segment "
                f"{name!r} holds only {segment.size}"
            )
        return bytes(segment.buf[:size])
    finally:
        segment.close()
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


def _disown(segment: Any) -> None:
    """Unregister ``segment`` from this process's resource tracker.

    The tracker would otherwise try to unlink the segment when *this*
    process exits — but ownership has been handed to the consumer, which
    unlinks after claiming.  Best-effort: tracker internals are stable
    across CPython 3.8–3.13, but a failure here only risks a spurious
    "leaked shared_memory" warning, never a wrong result.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # noqa: BLE001 - cosmetic only
        pass


class ShmTransport:
    """Policy object deciding which reply frames go through shared memory."""

    def __init__(self, *, threshold: int = SHM_MIN_BYTES, enabled: bool = True):
        self.threshold = max(0, int(threshold))
        self.enabled = bool(enabled) and shared_memory_available()

    def offload(self, frame_size: int) -> bool:
        """Whether a frame of ``frame_size`` bytes should travel via shm."""
        return self.enabled and frame_size >= self.threshold

    def publish(self, frame: bytes) -> dict[str, Any] | None:
        return publish_frame(frame) if self.enabled else None

    def describe(self) -> str:
        if not self.enabled:
            return "inline"
        return f"shm(>= {self.threshold}B)"


def transport_from_name(name: str, threshold: int | None = None) -> ShmTransport | None:
    """Build the reply transport for a worker from its configuration.

    ``"inline"`` always uses the pipe codec; ``"shm"`` and ``"auto"`` use
    shared memory for frames at or above the threshold when the platform
    supports it (``"auto"`` is the default and differs from ``"shm"`` only
    in intent — both fall back to inline per frame on failure).
    """
    if name == "inline":
        return None
    if name not in ("auto", "shm"):
        raise EngineError(f"unknown serving transport {name!r}; use 'auto', 'shm' or 'inline'")
    transport = ShmTransport(threshold=SHM_MIN_BYTES if threshold is None else threshold)
    return transport if transport.enabled else None
