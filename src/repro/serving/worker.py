"""The shard worker process: memmap assigned shards, answer pool requests.

``worker_main`` is the entry point the :class:`~repro.serving.pool.WorkerPool`
spawns.  Each worker owns a disjoint set of shards of one partitioned
snapshot; per shard it opens a standalone engine (``Engine.open_shard`` —
memmap-backed, so N workers on one host share the OS page cache) wrapped in
the same :class:`~repro.engine.executors.InProcessShard` backend the
in-process sharded executor uses.  The request loop speaks the
length-prefixed codec of :mod:`repro.serving.codec` over a
``multiprocessing`` connection:

========== ==================================================================
op         behaviour
========== ==================================================================
ping       liveness check; returns the worker's pid and shard set
segment    evaluate a row-local plan segment against one shard's fragment
stats      the shard's collection-statistics summary (df/cf/doc-count)
search     rank one shard against global statistics; returns ids/scores/rows
fragment   one shard's fragment of a table, plus its original row indices
store      one shard's slice of the triple list, plus original indices
close      drain and exit cleanly
========== ==================================================================

Failures never kill the loop: any exception is reported back as an
``{"ok": False, "error": ...}`` reply and the worker keeps serving — only a
closed pipe (the router went away) or ``close`` ends the process.
"""

from __future__ import annotations

import os
import traceback
from typing import Any

from repro.serving.codec import decode_message, encode_message


def _open_backend(snapshot_path: str, shard: int, mmap: bool):
    from repro.engine import Engine
    from repro.engine.executors import InProcessShard
    from repro.storage.shards import read_shard_map, shard_rowids

    shard_map = read_shard_map(snapshot_path)
    return InProcessShard(
        Engine.open(shard_map.shard_directories[shard], mmap=mmap),
        shard_rowids(shard_map, shard),
    )


def worker_main(
    snapshot_path: str,
    shards: list[int],
    connection: Any,
    *,
    mmap: bool = True,
) -> None:
    """Serve shard requests until the connection closes or ``close`` arrives."""
    backends: dict[int, Any] = {}

    def backend(shard: int):
        if shard not in shards:
            raise ValueError(f"shard {shard} is not assigned to this worker ({shards})")
        opened = backends.get(shard)
        if opened is None:
            opened = _open_backend(snapshot_path, shard, mmap)
            backends[shard] = opened
        return opened

    def handle(message: dict[str, Any]) -> Any:
        op = message["op"]
        if op == "ping":
            return {"pid": os.getpid(), "shards": list(shards)}
        if op == "segment":
            result = backend(message["shard"]).evaluate_segment(
                message["plan"], message["table"]
            )
            return result  # a ProbabilisticRelation; the codec packs it
        if op == "stats":
            return backend(message["shard"]).statistics_summary(message["spec"]).to_payload()
        if op == "search":
            from repro.ir.statistics import GlobalStatistics

            doc_ids, scores, rows = backend(message["shard"]).search_shard(
                message["spec"], GlobalStatistics.from_payload(message["global"])
            )
            return {"doc_ids": doc_ids, "scores": scores, "rows": rows}
        if op == "fragment":
            relation, rows = backend(message["shard"]).fragment(message["table"])
            return {"relation": relation, "rows": rows}
        if op == "store":
            triples, rows = backend(message["shard"]).triples_fragment()
            return {"triples": triples, "rows": rows}
        raise ValueError(f"unknown worker op {op!r}")

    try:
        while True:
            try:
                frame = connection.recv_bytes()
            except (EOFError, OSError):
                break
            message = decode_message(frame)
            if message.get("op") == "close":
                connection.send_bytes(encode_message({"ok": True, "value": None}))
                break
            try:
                value = handle(message)
            except BaseException as error:  # noqa: BLE001 - reported to the router
                reply = {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(),
                }
            else:
                reply = {"ok": True, "value": value}
            try:
                connection.send_bytes(encode_message(reply))
            except (BrokenPipeError, OSError):
                break
    finally:
        for opened in backends.values():
            try:
                opened.close()
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass
        try:
            connection.close()
        except OSError:
            pass
