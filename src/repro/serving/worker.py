"""The shard worker process: memmap assigned shards, answer pool requests.

``worker_main`` is the entry point the :class:`~repro.serving.pool.WorkerPool`
spawns.  Each worker owns a disjoint set of shards of one partitioned
snapshot; per shard it opens a standalone engine (``Engine.open_shard`` —
memmap-backed, so N workers on one host share the OS page cache) wrapped in
the same :class:`~repro.engine.executors.InProcessShard` backend the
in-process sharded executor uses.  The request loop speaks the *tagged*
frames of :mod:`repro.serving.codec` over a ``multiprocessing`` connection:
each request carries an 8-byte id the reply echoes, so the pool can keep
many requests in flight per worker, and replies at or above the
shared-memory threshold travel out-of-band (:mod:`repro.serving.shm`) with
only a control frame on the pipe.

========== ==================================================================
op         behaviour
========== ==================================================================
ping       liveness check; returns the worker's pid, shard set and epoch
segment    evaluate a row-local plan segment against one shard's fragment
stats      the shard's collection-statistics summary (df/cf/doc-count)
search     rank one shard against global statistics; returns ids/scores/rows
fragment   one shard's fragment of a table, plus its original row indices
store      one shard's slice of the triple list, plus original indices
close      drain and exit cleanly
========== ==================================================================

``search`` requests carry the global statistics payload at most once: the
worker caches it keyed exactly like the executor's own cache
(:func:`~repro.engine.executors.statistics_key`), and a request without a
payload for an unknown key is answered with the ``global-missing`` code so
the pool re-sends it — steady-state searches cost terms + a key, not the
df/cf tables.

Failures never kill the loop: any exception is reported back as an
``{"ok": False, "error": ...}`` reply and the worker keeps serving — only a
closed pipe (the router went away) or ``close`` ends the process.
"""

from __future__ import annotations

import os
import traceback
from typing import Any

from repro.serving.codec import encode_tagged, resolve_tagged, split_tagged


def _open_backend(snapshot_path: str, shard: int, mmap: bool):
    from repro.engine import Engine
    from repro.engine.executors import InProcessShard
    from repro.storage.shards import read_shard_map, shard_rowids

    shard_map = read_shard_map(snapshot_path)
    return InProcessShard(
        Engine.open(shard_map.shard_directory(shard), mmap=mmap),
        shard_rowids(shard_map, shard),
    )


def worker_main(
    snapshot_path: str,
    shards: list[int],
    connection: Any,
    *,
    mmap: bool = True,
    transport: str = "auto",
    shm_threshold: int | None = None,
    epoch: int = 0,
) -> None:
    """Serve shard requests until the connection closes or ``close`` arrives."""
    from repro.serving import shm as shm_policy
    from repro.serving.pool import GLOBAL_MISSING

    backends: dict[int, Any] = {}
    cached_globals: dict[tuple, Any] = {}
    try:
        reply_transport = shm_policy.transport_from_name(transport, shm_threshold)
    except Exception:  # noqa: BLE001 - a bad name falls back to inline replies
        reply_transport = None

    def backend(shard: int):
        if shard not in shards:
            raise ValueError(f"shard {shard} is not assigned to this worker ({shards})")
        opened = backends.get(shard)
        if opened is None:
            opened = _open_backend(snapshot_path, shard, mmap)
            backends[shard] = opened
        return opened

    def global_for(message: dict[str, Any]):
        from repro.engine.executors import statistics_key
        from repro.ir.statistics import GlobalStatistics

        key = statistics_key(message["spec"])
        payload = message.get("global")
        if payload is not None:
            cached_globals[key] = GlobalStatistics.from_payload(payload)
        return cached_globals.get(key)

    def handle(message: dict[str, Any]) -> dict[str, Any]:
        op = message["op"]
        if op == "ping":
            # the epoch identifies which versioned shard layout this worker
            # serves — after a blueprint swap, old- and new-epoch workers
            # briefly coexist while in-flight requests drain
            return {
                "ok": True,
                "value": {"pid": os.getpid(), "shards": list(shards), "epoch": epoch},
            }
        if op == "segment":
            result = backend(message["shard"]).evaluate_segment(
                message["plan"], message["table"]
            )
            return {"ok": True, "value": result}  # the codec packs the relation
        if op == "stats":
            summary = backend(message["shard"]).statistics_summary(message["spec"])
            return {"ok": True, "value": summary.to_payload()}
        if op == "search":
            global_statistics = global_for(message)
            if global_statistics is None:
                return {
                    "ok": False,
                    "code": GLOBAL_MISSING,
                    "error": "global statistics not cached for this spec; re-send with payload",
                }
            doc_ids, scores, rows = backend(message["shard"]).search_shard(
                message["spec"], global_statistics
            )
            return {"ok": True, "value": {"doc_ids": doc_ids, "scores": scores, "rows": rows}}
        if op == "fragment":
            relation, rows = backend(message["shard"]).fragment(message["table"])
            return {"ok": True, "value": {"relation": relation, "rows": rows}}
        if op == "store":
            triples, rows = backend(message["shard"]).triples_fragment()
            return {"ok": True, "value": {"triples": triples, "rows": rows}}
        raise ValueError(f"unknown worker op {op!r}")

    try:
        while True:
            try:
                data = connection.recv_bytes()
            except (EOFError, OSError):
                break
            request_id, kind, body = split_tagged(data)
            message = resolve_tagged(kind, body)
            if message.get("op") == "close":
                connection.send_bytes(encode_tagged(request_id, {"ok": True, "value": None}))
                break
            try:
                reply = handle(message)
            except BaseException as error:  # noqa: BLE001 - reported to the router
                reply = {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(),
                }
            try:
                connection.send_bytes(
                    encode_tagged(request_id, reply, transport=reply_transport)
                )
            except (BrokenPipeError, OSError):
                break
    finally:
        for opened in backends.values():
            try:
                opened.close()
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass
        try:
            connection.close()
        except OSError:
            pass
