"""The shard worker process: memmap assigned shards, answer pool requests.

``worker_main`` is the entry point the :class:`~repro.serving.pool.WorkerPool`
spawns.  Each worker owns a disjoint set of shards of one partitioned
snapshot; per shard it opens a standalone engine (``Engine.open_shard`` —
memmap-backed, so N workers on one host share the OS page cache) wrapped in
the same :class:`~repro.engine.executors.InProcessShard` backend the
in-process sharded executor uses.  The request loop speaks the *tagged*
frames of :mod:`repro.serving.codec` over a ``multiprocessing`` connection:
each request carries an 8-byte id the reply echoes, so the pool can keep
many requests in flight per worker, and replies at or above the
shared-memory threshold travel out-of-band (:mod:`repro.serving.shm`) with
only a control frame on the pipe.

=========== =================================================================
op          behaviour
=========== =================================================================
ping        liveness check; returns the worker's pid, shard set and epoch
segment     evaluate a row-local plan segment against one shard's fragment
stats       the shard's collection-statistics summary (df/cf/doc-count)
search      rank one shard against global statistics; returns ids/scores/rows
search_many rank a whole query batch in one vectorized pass (shared postings)
fragment    one shard's fragment of a table, plus its original row indices
store       one shard's slice of the triple list, plus original indices
close       drain and exit cleanly
=========== =================================================================

**Micro-batching.**  A coalesced request frame
(:func:`~repro.serving.codec.encode_batch`) decodes into its sub-requests;
compatible ``search`` sub-requests — same shard, statistics key and ranking
model — are answered through the vectorized multi-query kernel
(``search_shard_many``: each term's posting list is sliced and scored once
per batch, not once per query), everything else is handled individually in
arrival order, and the replies travel back as one coalesced frame.  Every
sub-reply is encoded with the normal reply transport first, so large
results still ride shared memory.  Batch execution is result-identical by
construction: a vectorized group that fails for any reason falls back to
per-request handling, and a batch of one is processed exactly like an
unbatched frame.

``search`` requests carry the global statistics payload at most once: the
worker caches it keyed exactly like the executor's own cache
(:func:`~repro.engine.executors.statistics_key`), and a request without a
payload for an unknown key is answered with the ``global-missing`` code so
the pool re-sends it — steady-state searches cost terms + a key, not the
df/cf tables.

Failures never kill the loop: any exception is reported back as an
``{"ok": False, "error": ...}`` reply and the worker keeps serving — only a
closed pipe (the router went away) or ``close`` ends the process.
"""

from __future__ import annotations

import os
import traceback
from typing import Any

from repro.serving.codec import (
    KIND_BATCH,
    MAX_FRAME_BYTES,
    encode_batch,
    encode_tagged,
    resolve_tagged,
    split_batch,
    split_tagged,
)


def _open_backend(snapshot_path: str, shard: int, mmap: bool):
    from repro.engine import Engine
    from repro.engine.executors import InProcessShard
    from repro.storage.shards import read_shard_map, shard_rowids

    shard_map = read_shard_map(snapshot_path)
    return InProcessShard(
        Engine.open(shard_map.shard_directory(shard), mmap=mmap),
        shard_rowids(shard_map, shard),
    )


def worker_main(
    snapshot_path: str,
    shards: list[int],
    connection: Any,
    *,
    mmap: bool = True,
    transport: str = "auto",
    shm_threshold: int | None = None,
    epoch: int = 0,
) -> None:
    """Serve shard requests until the connection closes or ``close`` arrives."""
    from repro.serving import shm as shm_policy
    from repro.serving.pool import GLOBAL_MISSING

    backends: dict[int, Any] = {}
    cached_globals: dict[tuple, Any] = {}
    try:
        reply_transport = shm_policy.transport_from_name(transport, shm_threshold)
    except Exception:  # noqa: BLE001 - a bad name falls back to inline replies
        reply_transport = None

    def backend(shard: int):
        if shard not in shards:
            raise ValueError(f"shard {shard} is not assigned to this worker ({shards})")
        opened = backends.get(shard)
        if opened is None:
            opened = _open_backend(snapshot_path, shard, mmap)
            backends[shard] = opened
        return opened

    def global_for(message: dict[str, Any]):
        from repro.engine.executors import statistics_key
        from repro.ir.statistics import GlobalStatistics

        spec = message.get("spec")
        if spec is None:
            spec = message["specs"][0]
        key = statistics_key(spec)
        payload = message.get("global")
        if payload is not None:
            cached_globals[key] = GlobalStatistics.from_payload(payload)
        return cached_globals.get(key)

    def handle(message: dict[str, Any]) -> dict[str, Any]:
        op = message["op"]
        if op == "ping":
            # the epoch identifies which versioned shard layout this worker
            # serves — after a blueprint swap, old- and new-epoch workers
            # briefly coexist while in-flight requests drain
            return {
                "ok": True,
                "value": {"pid": os.getpid(), "shards": list(shards), "epoch": epoch},
            }
        if op == "segment":
            result = backend(message["shard"]).evaluate_segment(
                message["plan"], message["table"]
            )
            return {"ok": True, "value": result}  # the codec packs the relation
        if op == "stats":
            summary = backend(message["shard"]).statistics_summary(message["spec"])
            return {"ok": True, "value": summary.to_payload()}
        if op == "search":
            global_statistics = global_for(message)
            if global_statistics is None:
                return {
                    "ok": False,
                    "code": GLOBAL_MISSING,
                    "error": "global statistics not cached for this spec; re-send with payload",
                }
            doc_ids, scores, rows = backend(message["shard"]).search_shard(
                message["spec"], global_statistics
            )
            return {"ok": True, "value": {"doc_ids": doc_ids, "scores": scores, "rows": rows}}
        if op == "search_many":
            global_statistics = global_for(message)
            if global_statistics is None:
                return {
                    "ok": False,
                    "code": GLOBAL_MISSING,
                    "error": "global statistics not cached for this spec; re-send with payload",
                }
            ranked = backend(message["shard"]).search_shard_many(
                message["specs"], global_statistics
            )
            return {
                "ok": True,
                "value": [
                    {"doc_ids": doc_ids, "scores": scores, "rows": rows}
                    for doc_ids, scores, rows in ranked
                ],
            }
        if op == "fragment":
            relation, rows = backend(message["shard"]).fragment(message["table"])
            return {"ok": True, "value": {"relation": relation, "rows": rows}}
        if op == "store":
            triples, rows = backend(message["shard"]).triples_fragment()
            return {"ok": True, "value": {"triples": triples, "rows": rows}}
        raise ValueError(f"unknown worker op {op!r}")

    def safe_handle(message: dict[str, Any]) -> dict[str, Any]:
        try:
            return handle(message)
        except BaseException as error:  # noqa: BLE001 - reported to the router
            return {
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
                "traceback": traceback.format_exc(),
            }

    def search_group_key(message: dict[str, Any]):
        """The batch-compatibility key of a ``search`` request, or ``None``."""
        if message.get("op") != "search":
            return None
        try:
            from repro.engine.executors import statistics_key

            spec = message["spec"]
            model = getattr(spec, "model", None)
            descriptor = repr(model.describe()) if model is not None else "default"
            return (message["shard"], statistics_key(spec), descriptor)
        except BaseException:  # noqa: BLE001 - ineligible requests run alone
            return None

    def execute_batch(
        requests: list[tuple[int, dict[str, Any]]],
    ) -> list[tuple[int, dict[str, Any]]]:
        """Answer a decoded batch; compatible searches share one kernel pass."""
        groups: dict[Any, list[int]] = {}
        for index, (_, message) in enumerate(requests):
            key = search_group_key(message)
            if key is not None:
                groups.setdefault(key, []).append(index)
        replies: list[dict[str, Any] | None] = [None] * len(requests)
        for members in groups.values():
            if len(members) < 2:
                continue
            try:
                stats = None
                for index in members:  # the payload may ride on any member
                    found = global_for(requests[index][1])
                    if found is not None:
                        stats = found
                if stats is None:
                    continue  # per-request handling answers GLOBAL_MISSING
                specs = [requests[index][1]["spec"] for index in members]
                shard = requests[members[0]][1]["shard"]
                ranked = backend(shard).search_shard_many(specs, stats)
                for index, (doc_ids, scores, rows) in zip(members, ranked):
                    replies[index] = {
                        "ok": True,
                        "value": {"doc_ids": doc_ids, "scores": scores, "rows": rows},
                    }
            except BaseException:  # noqa: BLE001 - fall back to per-request
                for index in members:
                    replies[index] = None
        return [
            (rid, reply if reply is not None else safe_handle(message))
            for (rid, message), reply in zip(requests, replies)
        ]

    try:
        while True:
            try:
                data = connection.recv_bytes()
            except (EOFError, OSError):
                break
            request_id, kind, body = split_tagged(data)
            if kind == KIND_BATCH:
                requests = []
                for sub in split_batch(body):
                    sub_id, sub_kind, sub_body = split_tagged(sub)
                    requests.append((sub_id, resolve_tagged(sub_kind, sub_body)))
            else:
                requests = [(request_id, resolve_tagged(kind, body))]
            close_ids = [rid for rid, msg in requests if msg.get("op") == "close"]
            work = [(rid, msg) for rid, msg in requests if msg.get("op") != "close"]
            replies = execute_batch(work) if work else []
            replies.extend((rid, {"ok": True, "value": None}) for rid in close_ids)
            frames = [
                encode_tagged(rid, reply, transport=reply_transport)
                for rid, reply in replies
            ]
            try:
                offset = 0
                while offset < len(frames):
                    chunk = [frames[offset]]
                    size = 16 + 4 + len(frames[offset])
                    offset += 1
                    while (
                        offset < len(frames)
                        and size + 4 + len(frames[offset]) <= MAX_FRAME_BYTES
                    ):
                        chunk.append(frames[offset])
                        size += 4 + len(frames[offset])
                        offset += 1
                    connection.send_bytes(encode_batch(chunk))
            except (BrokenPipeError, OSError):
                break
            if close_ids:
                break
    finally:
        for opened in backends.values():
            try:
                opened.close()
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass
        try:
            connection.close()
        except OSError:
            pass
