"""A small length-prefixed codec for plans and relations.

Every router↔worker message is one self-delimiting binary frame::

    +----------------+----------------------------------------+
    | 4-byte big-    | payload: pickled message dict, with    |
    | endian length  | relations packed as raw column buffers |
    +----------------+----------------------------------------+

Relations never travel as pickled object graphs: :func:`pack_relation`
lowers them to the same primitive form the snapshot format uses — numeric
and boolean columns as little-endian buffers, string columns as one UTF-8
blob plus an ``int64`` offsets buffer — so a gathered fragment costs a few
``memcpy``-shaped writes instead of a per-value pickle walk, and the wire
form stays aligned with the on-disk form.  Plans (:class:`~repro.pra.plan.PraPlan`
trees) are small and pickle cleanly.

Frames are self-delimiting, so the same bytes work over any transport:
:func:`write_frame`/:func:`read_frame` serve raw byte streams (sockets,
pipes), while the worker pool sends *tagged* frames over a
``multiprocessing`` connection::

    +---------------+--------+--------------------------------+
    | 8-byte big-   | 1-byte | an encoded frame (inline), or  |
    | endian req id | kind   | a control frame (shared memory)|
    +---------------+--------+--------------------------------+

The request id lets one connection carry many requests in flight (the pool
pipelines per worker and matches replies to futures by id); the kind byte
selects the body transport: ``I`` means the body is the message frame
itself, ``S`` means the body is a tiny control frame naming a shared-memory
segment holding the real frame (:mod:`repro.serving.shm`), and ``B`` means
the body is a **batch** — the length-prefixed concatenation of complete
tagged frames (:func:`encode_batch`/:func:`split_batch`), each keeping its
own request id, so N co-arriving requests or replies cost one
``send_bytes`` syscall instead of N.  A batch of one is never wrapped:
:func:`encode_batch` returns the lone frame unchanged, keeping batch-of-1
traffic byte-identical to the unbatched path.  Workers fall back to inline
framing per message whenever shared memory is unavailable, so every tagged
frame is decodable with :func:`resolve_tagged` regardless of platform.

**Limits.**  :data:`MAX_FRAME_BYTES` is enforced at *both* ends: writers
(:func:`encode_message`) refuse to emit an oversized frame with a clear
:class:`~repro.errors.EngineError` naming the size, and readers refuse a
length prefix above the limit — so a corrupt prefix can never trigger a
multi-gigabyte allocation, and an oversized payload can never poison a
connection with a frame no reader will accept.
"""

from __future__ import annotations

import pickle
import struct
from collections.abc import Sequence
from typing import Any, BinaryIO

import numpy as np

from repro.errors import EngineError
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving import shm as shm_transport

_LENGTH = struct.Struct(">I")
_TAG = struct.Struct(">Q")

#: frames larger than this are refused by writers and readers alike
MAX_FRAME_BYTES = 1 << 31

#: tagged-frame kinds: the body is the frame itself / a shm control frame /
#: a coalesced batch of complete tagged frames
KIND_INLINE = b"I"
KIND_SHM = b"S"
KIND_BATCH = b"B"

#: the request id carried by a batch envelope (sub-frames keep their own ids)
BATCH_ENVELOPE_ID = 0

_PACKED_RELATION = "__packed_relation__"
_PACKED_PROBABILISTIC = "__packed_probabilistic__"
_PACKED_ARRAY = "__packed_array__"

_NUMERIC_WIRE_DTYPES = {
    DataType.INT: "<i8",
    DataType.FLOAT: "<f8",
    DataType.BOOL: "|b1",
}


def pack_array(array: np.ndarray) -> dict[str, Any]:
    """Pack a numeric NumPy array as raw little-endian bytes."""
    array = np.ascontiguousarray(array)
    wire = array.astype(array.dtype.newbyteorder("<"), copy=False)
    return {_PACKED_ARRAY: {"dtype": wire.dtype.str, "data": wire.tobytes()}}


def unpack_array(payload: dict[str, Any]) -> np.ndarray:
    body = payload[_PACKED_ARRAY]
    return np.frombuffer(body["data"], dtype=np.dtype(body["dtype"])).copy()


def _pack_column(column: Column) -> dict[str, Any]:
    if column.dtype is DataType.STRING:
        texts = [str(value) for value in column.values]
        offsets = np.zeros(len(texts) + 1, dtype="<i8")
        encoded = [text.encode("utf-8") for text in texts]
        if encoded:
            offsets[1:] = np.cumsum([len(blob) for blob in encoded])
        return {
            "dtype": column.dtype.value,
            "blob": b"".join(encoded),
            "offsets": offsets.tobytes(),
        }
    wire_dtype = _NUMERIC_WIRE_DTYPES[column.dtype]
    values = np.ascontiguousarray(column.values).astype(wire_dtype, copy=False)
    return {"dtype": column.dtype.value, "data": values.tobytes()}


def _unpack_column(payload: dict[str, Any]) -> Column:
    dtype = DataType(payload["dtype"])
    if dtype is DataType.STRING:
        offsets = np.frombuffer(payload["offsets"], dtype="<i8")
        blob = payload["blob"]
        values = np.empty(len(offsets) - 1, dtype=object)
        for index in range(len(values)):
            values[index] = blob[offsets[index] : offsets[index + 1]].decode("utf-8")
        return Column(values, dtype)
    values = np.frombuffer(payload["data"], dtype=_NUMERIC_WIRE_DTYPES[dtype])
    return Column(values.astype(dtype.numpy_dtype, copy=False).copy(), dtype)


def pack_relation(relation: Relation) -> dict[str, Any]:
    """Lower a relation to primitive column buffers (the wire form)."""
    return {
        _PACKED_RELATION: {
            "names": list(relation.schema.names),
            "columns": [_pack_column(column) for column in relation.columns().values()],
        }
    }


def unpack_relation(payload: dict[str, Any]) -> Relation:
    body = payload[_PACKED_RELATION]
    columns = [_unpack_column(entry) for entry in body["columns"]]
    fields = [Field(name, column.dtype) for name, column in zip(body["names"], columns)]
    return Relation(Schema(fields), columns)


def _transform(value: Any, pack: bool) -> Any:
    if pack:
        if isinstance(value, ProbabilisticRelation):
            return {_PACKED_PROBABILISTIC: pack_relation(value.relation)}
        if isinstance(value, Relation):
            return pack_relation(value)
        if isinstance(value, np.ndarray):
            return pack_array(value)
    elif isinstance(value, dict):
        if _PACKED_PROBABILISTIC in value:
            return ProbabilisticRelation(
                unpack_relation(value[_PACKED_PROBABILISTIC]), validate=False
            )
        if _PACKED_RELATION in value:
            return unpack_relation(value)
        if _PACKED_ARRAY in value:
            return unpack_array(value)
    if isinstance(value, dict):
        return {key: _transform(item, pack) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        transformed = [_transform(item, pack) for item in value]
        return type(value)(transformed) if isinstance(value, tuple) else transformed
    return value


def encode_message(message: dict[str, Any]) -> bytes:
    """Encode a message dict as one length-prefixed frame.

    Raises :class:`~repro.errors.EngineError` when the payload exceeds
    :data:`MAX_FRAME_BYTES` — every reader rejects such a frame anyway, and
    a payload past the ``>I`` range would otherwise escape as a raw
    ``struct.error``; enforcing the limit at write time keeps the failure
    on the writer, with the offending size in the message.
    """
    payload = pickle.dumps(_transform(message, pack=True), protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise EngineError(
            f"refusing to encode a {len(payload)}-byte frame: the wire limit is "
            f"{MAX_FRAME_BYTES} bytes (split the result or raise MAX_FRAME_BYTES "
            "on both ends)"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_message(frame: bytes) -> dict[str, Any]:
    """Decode a frame produced by :func:`encode_message`.

    Any malformed input — truncated header, length/payload mismatch, or a
    payload that is not a valid encoded message — raises a clean
    :class:`~repro.errors.EngineError`; garbage bytes never escape as
    ``struct.error``/``pickle`` internals.
    """
    if len(frame) < _LENGTH.size:
        raise EngineError(f"truncated frame: {len(frame)} bytes")
    (length,) = _LENGTH.unpack_from(frame)
    payload = frame[_LENGTH.size :]
    if length != len(payload):
        raise EngineError(
            f"frame length prefix says {length} bytes, payload has {len(payload)}"
        )
    try:
        message = pickle.loads(payload)
    except Exception as error:  # noqa: BLE001 - corrupt payloads must not escape raw
        raise EngineError(f"corrupt frame payload: {type(error).__name__}: {error}") from error
    if not isinstance(message, dict):
        raise EngineError(
            f"frame payload decoded to {type(message).__name__}, expected a message dict"
        )
    try:
        return _transform(message, pack=False)
    except Exception as error:  # noqa: BLE001 - corrupt packed columns/arrays
        raise EngineError(
            f"corrupt packed value in frame: {type(error).__name__}: {error}"
        ) from error


def write_frame(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Write one frame to a byte stream (socket/pipe file object).

    The frame (length prefix + payload) is built in one buffer by
    :func:`encode_message` and emitted with a single write: on a buffered
    stream the old ``write(...)`` + ``flush()`` pair copied the frame into
    the buffer and then drained it — two passes and (for a fresh buffer)
    two syscalls per frame — so here the frame bypasses the buffer and goes
    straight to the underlying raw stream after draining any bytes already
    buffered.  Streams without a ``raw`` attribute keep the portable
    write-then-flush path.
    """
    frame = encode_message(message)
    raw = getattr(stream, "raw", None)
    if raw is not None:
        stream.flush()  # drain previously buffered bytes first, in order
        view = memoryview(frame)
        while view.nbytes:
            written = raw.write(view)
            if written is None:  # pragma: no cover - non-blocking raw stream
                continue
            view = view[written:]
        return
    stream.write(frame)
    stream.flush()


def read_frame(stream: BinaryIO) -> dict[str, Any]:
    """Read one frame from a byte stream; raises :class:`EOFError` at end.

    Both the 4-byte header and the payload are read in a loop: a socket
    ``read`` may legally return fewer bytes than requested, so a short
    header read is retried until complete and only a genuinely truncated
    stream (EOF mid-header or mid-payload) raises
    :class:`~repro.errors.EngineError`.  A clean EOF at a frame boundary
    raises :class:`EOFError`.
    """
    header = b""
    while len(header) < _LENGTH.size:
        chunk = stream.read(_LENGTH.size - len(header))
        if not chunk:
            if not header:
                raise EOFError("stream closed")
            raise EngineError(
                f"stream closed mid-frame header ({len(header)} of {_LENGTH.size} bytes)"
            )
        header += chunk
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise EngineError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit")
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise EngineError("stream closed mid-frame")
        payload += chunk
    return decode_message(header + payload)


# ---------------------------------------------------------------------------
# tagged frames (the pipelined pool transport)
# ---------------------------------------------------------------------------


def encode_tagged(
    request_id: int,
    message: dict[str, Any],
    *,
    transport: "shm_transport.ShmTransport | None" = None,
) -> bytes:
    """Encode one tagged frame: request id, kind byte, body.

    With a ``transport``, frames at or above its threshold are published to
    shared memory and only a control frame travels on the pipe; a publish
    failure (or no transport) falls back to inline framing, so the result
    is always decodable by :func:`resolve_tagged`.
    """
    frame = encode_message(message)
    if transport is not None and transport.offload(len(frame)):
        control = transport.publish(frame)
        if control is not None:
            return _TAG.pack(request_id) + KIND_SHM + encode_message({"shm": control})
    return _TAG.pack(request_id) + KIND_INLINE + frame


def split_tagged(data: bytes) -> tuple[int, bytes, bytes]:
    """Split a tagged frame into ``(request_id, kind, body)``."""
    if len(data) < _TAG.size + 1:
        raise EngineError(f"truncated tagged frame: {len(data)} bytes")
    (request_id,) = _TAG.unpack_from(data)
    kind = data[_TAG.size : _TAG.size + 1]
    if kind not in (KIND_INLINE, KIND_SHM, KIND_BATCH):
        raise EngineError(f"unknown tagged-frame kind {kind!r}")
    return request_id, kind, data[_TAG.size + 1 :]


def encode_batch(frames: Sequence[bytes]) -> bytes:
    """Coalesce complete tagged frames into one batch frame.

    A batch of one degenerates to the frame itself — a single request is
    never wrapped, so batch-of-1 traffic is byte-identical to unbatched
    traffic by construction.  Larger batches travel as one tagged envelope
    (request id :data:`BATCH_ENVELOPE_ID`, kind :data:`KIND_BATCH`) whose
    body is the length-prefixed concatenation of the sub-frames, each of
    which keeps its own request id and kind.  An empty batch, or one whose
    envelope would exceed :data:`MAX_FRAME_BYTES`, is refused — callers
    split oversized batches instead of poisoning the pipe.
    """
    if not frames:
        raise EngineError("cannot encode an empty batch frame")
    if len(frames) == 1:
        return frames[0]
    body_parts: list[bytes] = []
    total = 0
    for frame in frames:
        body_parts.append(_LENGTH.pack(len(frame)))
        body_parts.append(frame)
        total += _LENGTH.size + len(frame)
    if total > MAX_FRAME_BYTES:
        raise EngineError(
            f"refusing to encode a {total}-byte batch frame of {len(frames)} "
            f"sub-frames: the wire limit is {MAX_FRAME_BYTES} bytes (send "
            "smaller batches)"
        )
    return _TAG.pack(BATCH_ENVELOPE_ID) + KIND_BATCH + b"".join(body_parts)


def split_batch(body: bytes) -> list[bytes]:
    """Split a batch frame's body back into its tagged sub-frames.

    Every malformed shape — a truncated length prefix, a sub-frame length
    past the buffer or above :data:`MAX_FRAME_BYTES`, an empty batch —
    raises a clean :class:`~repro.errors.EngineError`, mirroring
    :func:`decode_message`'s contract that garbage never escapes as
    ``struct`` internals.
    """
    frames: list[bytes] = []
    offset = 0
    view = memoryview(body)
    while offset < len(body):
        if offset + _LENGTH.size > len(body):
            raise EngineError(
                f"truncated batch frame: {len(body) - offset} trailing bytes"
            )
        (length,) = _LENGTH.unpack_from(body, offset)
        offset += _LENGTH.size
        if length > MAX_FRAME_BYTES:
            raise EngineError(
                f"batch sub-frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit"
            )
        if offset + length > len(body):
            raise EngineError(
                f"batch sub-frame length prefix says {length} bytes, "
                f"{len(body) - offset} remain"
            )
        frames.append(bytes(view[offset : offset + length]))
        offset += length
    if not frames:
        raise EngineError("batch frame carries no sub-frames")
    return frames


def resolve_tagged(kind: bytes, body: bytes) -> dict[str, Any]:
    """Decode a tagged frame's body into the message it carries.

    For :data:`KIND_SHM` bodies this claims (and unlinks) the published
    segment, so it must be called exactly once per frame, by the consumer.
    Batch envelopes carry *frames*, not one message — split them with
    :func:`split_batch` and resolve each sub-frame instead.
    """
    if kind == KIND_BATCH:
        raise EngineError(
            "batch frames carry multiple tagged sub-frames; split with "
            "split_batch() and resolve each sub-frame"
        )
    if kind == KIND_SHM:
        control = decode_message(body).get("shm")
        if not isinstance(control, dict):
            raise EngineError(f"malformed shared-memory control frame: {control!r}")
        return decode_message(shm_transport.claim_frame(control))
    return decode_message(body)
