"""A small length-prefixed codec for plans and relations.

Every router↔worker message is one self-delimiting binary frame::

    +----------------+----------------------------------------+
    | 4-byte big-    | payload: pickled message dict, with    |
    | endian length  | relations packed as raw column buffers |
    +----------------+----------------------------------------+

Relations never travel as pickled object graphs: :func:`pack_relation`
lowers them to the same primitive form the snapshot format uses — numeric
and boolean columns as little-endian buffers, string columns as one UTF-8
blob plus an ``int64`` offsets buffer — so a gathered fragment costs a few
``memcpy``-shaped writes instead of a per-value pickle walk, and the wire
form stays aligned with the on-disk form.  Plans (:class:`~repro.pra.plan.PraPlan`
trees) are small and pickle cleanly.

Frames are self-delimiting, so the same bytes work over any transport:
:func:`write_frame`/:func:`read_frame` serve raw byte streams (sockets,
pipes), while the worker pool sends the encoded frame over a
``multiprocessing`` connection.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, BinaryIO

import numpy as np

from repro.errors import EngineError
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

_LENGTH = struct.Struct(">I")

#: frames larger than this are refused (a corrupt length prefix, not data)
MAX_FRAME_BYTES = 1 << 31

_PACKED_RELATION = "__packed_relation__"
_PACKED_PROBABILISTIC = "__packed_probabilistic__"
_PACKED_ARRAY = "__packed_array__"

_NUMERIC_WIRE_DTYPES = {
    DataType.INT: "<i8",
    DataType.FLOAT: "<f8",
    DataType.BOOL: "|b1",
}


def pack_array(array: np.ndarray) -> dict[str, Any]:
    """Pack a numeric NumPy array as raw little-endian bytes."""
    array = np.ascontiguousarray(array)
    wire = array.astype(array.dtype.newbyteorder("<"), copy=False)
    return {_PACKED_ARRAY: {"dtype": wire.dtype.str, "data": wire.tobytes()}}


def unpack_array(payload: dict[str, Any]) -> np.ndarray:
    body = payload[_PACKED_ARRAY]
    return np.frombuffer(body["data"], dtype=np.dtype(body["dtype"])).copy()


def _pack_column(column: Column) -> dict[str, Any]:
    if column.dtype is DataType.STRING:
        texts = [str(value) for value in column.values]
        offsets = np.zeros(len(texts) + 1, dtype="<i8")
        encoded = [text.encode("utf-8") for text in texts]
        if encoded:
            offsets[1:] = np.cumsum([len(blob) for blob in encoded])
        return {
            "dtype": column.dtype.value,
            "blob": b"".join(encoded),
            "offsets": offsets.tobytes(),
        }
    wire_dtype = _NUMERIC_WIRE_DTYPES[column.dtype]
    values = np.ascontiguousarray(column.values).astype(wire_dtype, copy=False)
    return {"dtype": column.dtype.value, "data": values.tobytes()}


def _unpack_column(payload: dict[str, Any]) -> Column:
    dtype = DataType(payload["dtype"])
    if dtype is DataType.STRING:
        offsets = np.frombuffer(payload["offsets"], dtype="<i8")
        blob = payload["blob"]
        values = np.empty(len(offsets) - 1, dtype=object)
        for index in range(len(values)):
            values[index] = blob[offsets[index] : offsets[index + 1]].decode("utf-8")
        return Column(values, dtype)
    values = np.frombuffer(payload["data"], dtype=_NUMERIC_WIRE_DTYPES[dtype])
    return Column(values.astype(dtype.numpy_dtype, copy=False).copy(), dtype)


def pack_relation(relation: Relation) -> dict[str, Any]:
    """Lower a relation to primitive column buffers (the wire form)."""
    return {
        _PACKED_RELATION: {
            "names": list(relation.schema.names),
            "columns": [_pack_column(column) for column in relation.columns().values()],
        }
    }


def unpack_relation(payload: dict[str, Any]) -> Relation:
    body = payload[_PACKED_RELATION]
    columns = [_unpack_column(entry) for entry in body["columns"]]
    fields = [Field(name, column.dtype) for name, column in zip(body["names"], columns)]
    return Relation(Schema(fields), columns)


def _transform(value: Any, pack: bool) -> Any:
    if pack:
        if isinstance(value, ProbabilisticRelation):
            return {_PACKED_PROBABILISTIC: pack_relation(value.relation)}
        if isinstance(value, Relation):
            return pack_relation(value)
        if isinstance(value, np.ndarray):
            return pack_array(value)
    elif isinstance(value, dict):
        if _PACKED_PROBABILISTIC in value:
            return ProbabilisticRelation(
                unpack_relation(value[_PACKED_PROBABILISTIC]), validate=False
            )
        if _PACKED_RELATION in value:
            return unpack_relation(value)
        if _PACKED_ARRAY in value:
            return unpack_array(value)
    if isinstance(value, dict):
        return {key: _transform(item, pack) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        transformed = [_transform(item, pack) for item in value]
        return type(value)(transformed) if isinstance(value, tuple) else transformed
    return value


def encode_message(message: dict[str, Any]) -> bytes:
    """Encode a message dict as one length-prefixed frame."""
    payload = pickle.dumps(_transform(message, pack=True), protocol=pickle.HIGHEST_PROTOCOL)
    return _LENGTH.pack(len(payload)) + payload


def decode_message(frame: bytes) -> dict[str, Any]:
    """Decode a frame produced by :func:`encode_message`."""
    if len(frame) < _LENGTH.size:
        raise EngineError(f"truncated frame: {len(frame)} bytes")
    (length,) = _LENGTH.unpack_from(frame)
    payload = frame[_LENGTH.size :]
    if length != len(payload):
        raise EngineError(
            f"frame length prefix says {length} bytes, payload has {len(payload)}"
        )
    return _transform(pickle.loads(payload), pack=False)


def write_frame(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Write one frame to a byte stream (socket/pipe file object)."""
    stream.write(encode_message(message))
    stream.flush()


def read_frame(stream: BinaryIO) -> dict[str, Any]:
    """Read one frame from a byte stream; raises :class:`EOFError` at end."""
    header = stream.read(_LENGTH.size)
    if not header:
        raise EOFError("stream closed")
    if len(header) < _LENGTH.size:
        raise EngineError("truncated frame header")
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise EngineError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit")
    payload = b""
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise EngineError("stream closed mid-frame")
        payload += chunk
    return decode_message(header + payload)
