"""The worker pool: persistent shard processes behind the pool executor.

:class:`WorkerPool` spawns ``workers`` persistent processes (default: one
per shard) over a partitioned snapshot, assigns shards round-robin, and
multiplexes codec-framed requests over one duplex pipe per worker.  Each
worker memmaps its shards (OS page cache shared across workers on one
host), so pool start-up is O(process spawn), not O(data).

:meth:`WorkerPool.shard_backends` returns one :class:`PoolShard` proxy per
shard — the same backend interface :class:`~repro.engine.executors.InProcessShard`
implements, so :class:`~repro.engine.executors.PoolExecutor` reuses the
scatter-gather logic unchanged.  A worker that dies mid-request surfaces as
a clean :class:`~repro.errors.EngineError` naming the shard and worker, not
a hung pipe or a raw ``EOFError``.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import EngineError
from repro.serving.codec import decode_message, encode_message

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executors import SearchSpec
    from repro.ir.statistics import GlobalStatistics
    from repro.storage.shards import ShardMap

_JOIN_TIMEOUT_SECONDS = 5.0


class PoolShard:
    """Backend proxy for one shard served by a pool worker."""

    def __init__(self, pool: "WorkerPool", worker: int, shard: int):
        self._pool = pool
        self.worker = worker
        self.shard = shard

    def _request(self, message: dict[str, Any]) -> Any:
        message["shard"] = self.shard
        return self._pool.request(self.worker, self.shard, message)

    def evaluate_segment(self, plan: Any, table: str) -> Any:
        return self._request({"op": "segment", "plan": plan, "table": table})

    def statistics_summary(self, spec: "SearchSpec") -> "GlobalStatistics":
        from repro.ir.statistics import GlobalStatistics

        return GlobalStatistics.from_payload(self._request({"op": "stats", "spec": spec}))

    def search_shard(
        self, spec: "SearchSpec", global_statistics: "GlobalStatistics"
    ) -> tuple[list[Any], np.ndarray, np.ndarray]:
        reply = self._request(
            {"op": "search", "spec": spec, "global": global_statistics.to_payload()}
        )
        return (
            list(reply["doc_ids"]),
            np.asarray(reply["scores"], dtype=np.float64),
            np.asarray(reply["rows"], dtype=np.int64),
        )

    def fragment(self, table: str) -> tuple[Any, np.ndarray]:
        reply = self._request({"op": "fragment", "table": table})
        return reply["relation"], np.asarray(reply["rows"], dtype=np.int64)

    def triples_fragment(self) -> tuple[list, np.ndarray]:
        reply = self._request({"op": "store"})
        return list(reply["triples"]), np.asarray(reply["rows"], dtype=np.int64)

    def close(self) -> None:
        """Workers are shared between shards; the pool owns their lifecycle."""


class WorkerPool:
    """Persistent worker processes serving the shards of one snapshot."""

    def __init__(
        self,
        shard_map: "ShardMap",
        *,
        workers: int | None = None,
        mmap: bool = True,
        start_method: str = "spawn",
    ):
        from repro.serving.worker import worker_main

        self.shard_map = shard_map
        num_shards = shard_map.num_shards
        self.num_workers = max(1, min(workers if workers is not None else num_shards, num_shards))
        self._assignment: dict[int, int] = {
            shard: shard % self.num_workers for shard in range(num_shards)
        }
        self._closed = False

        context = multiprocessing.get_context(start_method)
        self._processes = []
        self._connections = []
        self._locks = [threading.Lock() for _ in range(self.num_workers)]
        for worker in range(self.num_workers):
            assigned = sorted(
                shard for shard, owner in self._assignment.items() if owner == worker
            )
            parent, child = context.Pipe(duplex=True)
            process = context.Process(
                target=worker_main,
                args=(str(shard_map.path), assigned, child),
                kwargs={"mmap": mmap},
                daemon=True,
                name=f"repro-shard-worker-{worker}",
            )
            process.start()
            child.close()
            self._processes.append(process)
            self._connections.append(parent)

    # -- request multiplexing ----------------------------------------------------

    def request(self, worker: int, shard: int, message: dict[str, Any]) -> Any:
        """Send one codec frame to ``worker`` and wait for its reply."""
        if self._closed:
            raise EngineError("worker pool is closed")
        connection = self._connections[worker]
        try:
            with self._locks[worker]:
                connection.send_bytes(encode_message(message))
                frame = connection.recv_bytes()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
            process = self._processes[worker]
            exitcode = process.exitcode
            raise EngineError(
                f"shard worker {worker} (serving shard {shard}) died "
                f"(exit code {exitcode}) during {message.get('op')!r}: {error!r}; "
                "restart the pool to recover"
            ) from error
        reply = decode_message(frame)
        if not reply.get("ok"):
            raise EngineError(
                f"shard worker {worker} failed {message.get('op')!r} for shard "
                f"{shard}: {reply.get('error')}"
            )
        return reply.get("value")

    def ping(self) -> list[dict[str, Any]]:
        """Liveness info from every worker (pid + assigned shards)."""
        return [
            self.request(worker, -1, {"op": "ping"}) for worker in range(self.num_workers)
        ]

    def liveness(self) -> list[dict[str, Any]]:
        """Per-worker process liveness without a worker round-trip.

        Unlike :meth:`ping` this never blocks on a busy or wedged worker —
        it only inspects the child processes — so health endpoints can call
        it on every request.
        """
        return [
            {
                "worker": worker,
                "pid": process.pid,
                "alive": process.is_alive(),
                "shards": sorted(
                    shard
                    for shard, owner in self._assignment.items()
                    if owner == worker
                ),
            }
            for worker, process in enumerate(self._processes)
        ]

    def shard_backends(self) -> list[PoolShard]:
        """One backend proxy per shard, in shard order."""
        return [
            PoolShard(self, self._assignment[shard], shard)
            for shard in range(self.shard_map.num_shards)
        ]

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Ask every worker to exit, then reap (terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for worker, connection in enumerate(self._connections):
            try:
                with self._locks[worker]:
                    connection.send_bytes(encode_message({"op": "close"}))
                    connection.recv_bytes()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                pass
            finally:
                try:
                    connection.close()
                except OSError:
                    pass
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT_SECONDS)
            if process.is_alive():  # pragma: no cover - stuck worker safety net
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_SECONDS)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
