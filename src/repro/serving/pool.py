"""The worker pool: replicated, self-healing shard processes.

:class:`WorkerPool` spawns persistent processes over a partitioned
snapshot and multiplexes codec-framed requests over one duplex pipe per
worker.  Each worker memmaps its shards (OS page cache shared across
workers on one host), so pool start-up is O(process spawn), not O(data).

**Replication.**  With ``replicas=R`` every shard is served by ``R``
workers (``base * R`` processes for ``base`` worker slots per replica
rank).  Requests route to the **least-outstanding live replica**; a
request whose worker dies — before the first reply or mid-request — or
whose connection is poisoned by a corrupt frame is transparently retried
on a surviving replica (excluded-runner pattern: each attempt excludes the
workers already tried, bounded by ``retry_budget``).  Retries are safe by
construction: snapshots are immutable, so every replica computes the
bit-identical answer.  Requests issued with an explicit worker index
(``request(worker, ...)``) stay **pinned** — they attribute failures to
that worker instead of failing over, which is what crash tests and the
close path want.

**Self-healing.**  A supervisor thread health-checks workers every
``health_interval_seconds`` and restarts dead ones from the immutable
snapshot with exponential backoff (``restart_backoff_seconds`` doubled per
consecutive restart, capped), up to ``max_restarts`` per slot; a slot that
exhausts its budget is marked failed.  :attr:`degraded` is true while any
slot is dead or failed — surfaced via ``/healthz`` and ``/statz``.
Failovers, deaths, restarts and failures are reported to the pool's
observer callback as structured events (the engine wires this into the
workload log).

**Pipelining.**  Every request frame carries an 8-byte request id
(:func:`~repro.serving.codec.encode_tagged`); receiving is
leader/follower per connection, so many requests can be in flight on one
pipe at once — the send lock is held only for the write, never for the
round trip.

**Result transport.**  Small replies travel inline on the pipe; replies at
or above the shared-memory threshold are published to
:mod:`repro.serving.shm` segments by the worker and only a control frame
crosses the pipe (``transport="inline"`` forces the pipe codec everywhere,
e.g. for CI parity runs).  Workers also cache the global collection
statistics a search needs, keyed like the executor's own cache, so steady
state search requests carry only terms and a key — not the df/cf tables.

:meth:`WorkerPool.shard_backends` returns one :class:`PoolShard` proxy per
shard — the same backend interface :class:`~repro.engine.executors.InProcessShard`
implements, so :class:`~repro.engine.executors.PoolExecutor` reuses the
scatter-gather logic unchanged.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.errors import EngineError
from repro.serving.codec import (
    KIND_BATCH,
    MAX_FRAME_BYTES,
    encode_batch,
    encode_tagged,
    resolve_tagged,
    split_batch,
    split_tagged,
)
from repro.serving.config import UNSET, ServingConfig, resolve_config

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executors import SearchSpec
    from repro.ir.statistics import GlobalStatistics
    from repro.storage.shards import ShardMap

_JOIN_TIMEOUT_SECONDS = 5.0

#: how long a failover will wait for the supervisor to restart a replica
#: when every replica of a shard is momentarily down (self-healing only)
_REPLICA_WAIT_SECONDS = 5.0

#: reply code a worker sends when it needs the global statistics re-sent
GLOBAL_MISSING = "global-missing"


class _WorkerDied(Exception):
    """Internal marker: the connection to a worker is unusable."""


#: how long a receive leader blocks in ``poll`` before re-checking state
_POLL_SECONDS = 0.1


class _WorkerConnection:
    """One duplex pipe to a worker process, multiplexed by request id.

    Receiving is leader/follower, not a dedicated reader thread: whichever
    waiting caller holds the receive lock drains frames (resolving futures
    by request id) until its own reply arrives, then hands leadership to
    the next waiter via the turnstile condition.  In the common serial case
    the caller that sent the request also reads the reply — no cross-thread
    hand-off, which on a busy host saves two context switches per reply.
    """

    def __init__(
        self,
        worker: int,
        connection: Any,
        process: Any,
        *,
        max_batch_size: int = 1,
        batch_delay_seconds: float = 0.0,
        on_batch: Callable[[int], None] | None = None,
    ):
        self.worker = worker
        self.connection = connection
        self.process = process
        self.installed_globals: set[tuple] = set()
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._turnstile = threading.Condition()
        self._pending: dict[int, Future] = {}
        self._next_id = 0
        self._death: str | None = None
        self._max_batch = max(1, int(max_batch_size))
        self._batch_delay = max(0.0, batch_delay_seconds)
        self._on_batch = on_batch
        self._outbox: list[bytes] = []  # encoded tagged frames awaiting a flush

    # -- sending -----------------------------------------------------------------

    def send(self, message: dict[str, Any]) -> Future:
        """Issue one request; returns a future resolving to (kind, body).

        Raises :class:`_WorkerDied` synchronously when the connection is
        already dead **or the write itself fails** — a worker that died
        between accept and first reply surfaces here exactly like a
        mid-request death, so callers handle both through one path.

        With ``max_batch_size > 1`` the frame is *queued* instead of written:
        the queue drains as one coalesced batch frame either when it reaches
        the batch bound or — crucially — at the top of the sender's own
        :meth:`wait` call, so a lone request is flushed immediately by its
        own waiter (zero added latency) while requests enqueued by other
        threads during a busy pipe ride along in the same ``send_bytes``
        syscall.  A write failure on the queued path surfaces through the
        pending future (every caller waits), not synchronously.
        """
        with self._state_lock:
            if self._death is not None:
                raise _WorkerDied(self._death)
            self._next_id += 1
            request_id = self._next_id
            future: Future = Future()
            self._pending[request_id] = future
        if self._max_batch <= 1:
            try:
                with self._send_lock:
                    self.connection.send_bytes(encode_tagged(request_id, message))
            except (BrokenPipeError, ConnectionResetError, OSError, ValueError) as error:
                self.mark_dead(f"pipe write failed: {error!r}")
                raise _WorkerDied(self._death or f"pipe write failed: {error!r}") from error
            return future
        with self._send_lock:
            self._outbox.append(encode_tagged(request_id, message))
            overflow = len(self._outbox) >= self._max_batch
        if overflow:
            self.flush()
        return future

    def flush(self, *, straggler_wait: bool = False) -> None:
        """Drain the send queue as coalesced batch frames (one write each).

        Batches are bounded by ``max_batch_size`` and by the wire frame
        limit; a queue of one drains as a plain tagged frame
        (:func:`~repro.serving.codec.encode_batch` never wraps a lone
        frame).  With ``straggler_wait`` and a configured batch delay, a
        short queue waits once — up to the delay — for more requests to
        arrive before draining; the default is purely opportunistic.
        Raises :class:`_WorkerDied` after failing all pending requests when
        the pipe write fails.
        """
        if not self._outbox:
            return
        if straggler_wait and self._batch_delay > 0:
            with self._send_lock:
                short = 0 < len(self._outbox) < self._max_batch
            if short:
                time.sleep(self._batch_delay)
        try:
            with self._send_lock:
                while self._outbox:
                    chunk: list[bytes] = []
                    size = 16  # envelope tag + kind, over-estimated
                    while self._outbox and len(chunk) < self._max_batch:
                        next_size = 4 + len(self._outbox[0])
                        if chunk and size + next_size > MAX_FRAME_BYTES:
                            break
                        chunk.append(self._outbox.pop(0))
                        size += next_size
                    self.connection.send_bytes(encode_batch(chunk))
                    if self._on_batch is not None:
                        self._on_batch(len(chunk))
        except (
            BrokenPipeError,
            ConnectionResetError,
            OSError,
            ValueError,
            EngineError,
        ) as error:
            self.mark_dead(f"pipe write failed: {error!r}")
            raise _WorkerDied(self._death or f"pipe write failed: {error!r}") from error

    def outstanding(self) -> int:
        """In-flight request count (the least-outstanding routing signal)."""
        with self._state_lock:
            return len(self._pending)

    # -- receiving ---------------------------------------------------------------

    def wait(self, future: Future, timeout: float | None = None) -> tuple[bytes, bytes]:
        """Wait for ``future``'s reply frame, draining the pipe if leading.

        Raises the future's exception (:class:`_WorkerDied`) on a dead
        connection and :class:`concurrent.futures.TimeoutError` on expiry.

        Every sender waits for its own reply, so flushing the send queue
        here guarantees no queued request is ever stranded: the first
        waiter drains everything enqueued while the pipe was busy as one
        coalesced frame.
        """
        if self._outbox:
            self.flush(straggler_wait=True)
        deadline = None if timeout is None else time.monotonic() + timeout
        while not future.done():
            if deadline is not None and time.monotonic() >= deadline:
                break
            if self._recv_lock.acquire(blocking=False):
                try:
                    self._lead(future, deadline)
                finally:
                    self._recv_lock.release()
                    with self._turnstile:
                        self._turnstile.notify_all()
            else:
                with self._turnstile:
                    # re-check under the turnstile lock: the leader may have
                    # exited between our failed acquire and this wait, and
                    # its notify_all requires the lock we now hold — so a
                    # free receive lock or a done future cannot be missed
                    if future.done() or not self._recv_lock.locked():
                        continue
                    self._turnstile.wait(_POLL_SECONDS)
        return future.result(timeout=0)

    def _lead(self, future: Future, deadline: float | None) -> None:
        """Drain reply frames until ``future`` resolves (or death/deadline).

        A batch reply frame resolves every sub-frame's future in one drain
        step — the worker coalesces the replies of a request batch exactly
        like the coordinator coalesced the requests.
        """
        while not future.done() and self._death is None:
            try:
                if deadline is not None:
                    # bounded wait: poll so the deadline is honored even if
                    # the worker never replies (close() uses this path)
                    if time.monotonic() >= deadline:
                        return
                    if not self.connection.poll(_POLL_SECONDS):
                        continue
                data = self.connection.recv_bytes()
            except (EOFError, OSError):
                self.mark_dead("connection closed")
                return
            try:
                request_id, kind, body = split_tagged(data)
                if kind == KIND_BATCH:
                    replies = [split_tagged(sub) for sub in split_batch(body)]
                else:
                    replies = [(request_id, kind, body)]
            except EngineError as error:
                self.mark_dead(f"sent an unreadable frame: {error}")
                return
            for reply_id, reply_kind, reply_body in replies:
                with self._state_lock:
                    target = self._pending.pop(reply_id, None)
                if target is not None and not target.done():
                    target.set_result((reply_kind, reply_body))
                    if target is not future:
                        with self._turnstile:
                            self._turnstile.notify_all()

    def mark_dead(self, reason: str) -> None:
        """Fail every in-flight request and reject all future ones."""
        with self._state_lock:
            if self._death is None:
                self._death = reason
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(_WorkerDied(reason))
        with self._turnstile:
            self._turnstile.notify_all()

    @property
    def death(self) -> str | None:
        return self._death

    def shutdown(self) -> None:
        try:
            self.connection.close()
        except OSError:
            pass


class _PendingReply:
    """One in-flight request: resolves, fails over, attributes errors."""

    def __init__(
        self,
        pool: "WorkerPool",
        worker: int,
        shard: int,
        op: str | None,
        future: Future,
        transform: Callable[[Any], Any] | None = None,
        *,
        connection: _WorkerConnection | None = None,
        message: dict[str, Any] | None = None,
        pinned: bool = True,
        attempted: set[int] | None = None,
        retries_left: int = 0,
    ):
        self._pool = pool
        self.worker = worker
        self.shard = shard
        self.op = op
        self._future = future
        self._transform = transform
        self.connection = connection
        self.message = message
        self.pinned = pinned
        # connection identities (not slot indices): a supervisor restart puts
        # a fresh connection in the slot, which is fair game to retry
        self.attempted = attempted if attempted is not None else set()
        self.retries_left = retries_left

    def reply(self, timeout: float | None = None) -> dict[str, Any]:
        """The decoded raw reply dict (``ok`` may be false)."""
        return self._pool._resolve(self, timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The reply's value; raises attributed ``EngineError`` on failure."""
        value = self._pool._unwrap(self, self.reply(timeout))
        return self._transform(value) if self._transform is not None else value


class _SearchPending:
    """A pipelined ``search`` request with global-statistics re-send retry."""

    def __init__(
        self,
        shard_proxy: "PoolShard",
        spec: "SearchSpec",
        global_statistics: "GlobalStatistics",
        key: tuple,
        pending: _PendingReply,
    ):
        self._proxy = shard_proxy
        self._spec = spec
        self._global = global_statistics
        self._key = key
        self._pending = pending

    def result(self, timeout: float | None = None) -> tuple[list[Any], np.ndarray, np.ndarray]:
        pool = self._proxy._pool
        reply = self._pending.reply(timeout)
        if not reply.get("ok") and reply.get("code") == GLOBAL_MISSING:
            # the worker lost (or never had) the cached global statistics
            # (a failover or restart lands here too); re-issue the request
            # carrying the full payload — still failover-eligible
            message = self._proxy._search_message(self._spec, self._global, install=True)
            self._pending = pool.begin_request(
                self._pending.worker, self._pending.shard, message, pinned=False
            )
            reply = self._pending.reply(timeout)
        value = pool._unwrap(self._pending, reply)
        pool.mark_global_installed(self._pending.worker, self._key)
        return (
            list(value["doc_ids"]),
            np.asarray(value["scores"], dtype=np.float64),
            np.asarray(value["rows"], dtype=np.int64),
        )


class _SearchManyPending:
    """A pipelined ``search_many`` request with the global-statistics retry.

    The worker answers a whole query batch through its vectorized
    multi-query kernel and replies once; the ``global-missing`` handshake
    works exactly as for single searches — the re-issued request carries
    the payload and stays failover-eligible.
    """

    def __init__(
        self,
        shard_proxy: "PoolShard",
        specs: "list[SearchSpec]",
        global_statistics: "GlobalStatistics",
        key: tuple,
        pending: _PendingReply,
    ):
        self._proxy = shard_proxy
        self._specs = specs
        self._global = global_statistics
        self._key = key
        self._pending = pending

    def result(
        self, timeout: float | None = None
    ) -> list[tuple[list[Any], np.ndarray, np.ndarray]]:
        pool = self._proxy._pool
        reply = self._pending.reply(timeout)
        if not reply.get("ok") and reply.get("code") == GLOBAL_MISSING:
            message = self._proxy._search_many_message(
                self._specs, self._global, install=True
            )
            self._pending = pool.begin_request(
                self._pending.worker, self._pending.shard, message, pinned=False
            )
            reply = self._pending.reply(timeout)
        value = pool._unwrap(self._pending, reply)
        pool.mark_global_installed(self._pending.worker, self._key)
        return [
            (
                list(entry["doc_ids"]),
                np.asarray(entry["scores"], dtype=np.float64),
                np.asarray(entry["rows"], dtype=np.int64),
            )
            for entry in value
        ]


class PoolShard:
    """Backend proxy for one shard served by the pool's replica set.

    Every ``begin_*`` method puts the request on the wire immediately and
    returns a pending reply; the blocking methods are ``begin`` + wait.
    The pool picks the serving replica per request (least outstanding), so
    the proxy survives individual worker deaths transparently.
    :attr:`pipelined` tells the scatter step it can fan out requests from
    one thread and overlap all workers.
    """

    pipelined = True

    def __init__(self, pool: "WorkerPool", worker: int, shard: int):
        self._pool = pool
        self.worker = worker  # home slot (replica 0); routing may pick others
        self.shard = shard

    def _begin(
        self, message: dict[str, Any], transform: Callable[[Any], Any] | None = None
    ) -> _PendingReply:
        message["shard"] = self.shard
        return self._pool.begin_request(None, self.shard, message, transform)

    def begin_segment(self, plan: Any, table: str) -> _PendingReply:
        return self._begin({"op": "segment", "plan": plan, "table": table})

    def evaluate_segment(self, plan: Any, table: str) -> Any:
        return self.begin_segment(plan, table).result()

    def begin_statistics_summary(self, spec: "SearchSpec") -> _PendingReply:
        from repro.ir.statistics import GlobalStatistics

        return self._begin({"op": "stats", "spec": spec}, GlobalStatistics.from_payload)

    def statistics_summary(self, spec: "SearchSpec") -> "GlobalStatistics":
        return self.begin_statistics_summary(spec).result()

    def _search_message(
        self, spec: "SearchSpec", global_statistics: "GlobalStatistics", *, install: bool
    ) -> dict[str, Any]:
        message: dict[str, Any] = {"op": "search", "spec": spec, "shard": self.shard}
        if install:
            message["global"] = global_statistics.to_payload()
        return message

    def begin_search(
        self, spec: "SearchSpec", global_statistics: "GlobalStatistics"
    ) -> _SearchPending:
        from repro.engine.executors import statistics_key

        key = statistics_key(spec)
        # pre-pick the replica so the install decision matches the route;
        # a failover to a replica without the stats triggers the
        # global-missing handshake, which composes with this path
        worker = self._pool.pick_worker(self.shard)
        install = worker is None or not self._pool.global_installed(worker, key)
        message = self._search_message(spec, global_statistics, install=install)
        pending = self._pool.begin_request(worker, self.shard, message, pinned=False)
        return _SearchPending(self, spec, global_statistics, key, pending)

    def search_shard(
        self, spec: "SearchSpec", global_statistics: "GlobalStatistics"
    ) -> tuple[list[Any], np.ndarray, np.ndarray]:
        return self.begin_search(spec, global_statistics).result()

    def _search_many_message(
        self,
        specs: "list[SearchSpec]",
        global_statistics: "GlobalStatistics",
        *,
        install: bool,
    ) -> dict[str, Any]:
        message: dict[str, Any] = {
            "op": "search_many",
            "specs": list(specs),
            "shard": self.shard,
        }
        if install:
            message["global"] = global_statistics.to_payload()
        return message

    def begin_search_many(
        self, specs: "list[SearchSpec]", global_statistics: "GlobalStatistics"
    ) -> _SearchManyPending:
        """One wire request ranking a whole query batch on this shard.

        All specs must share one statistics key (same table/pipeline/columns)
        — the executor groups before calling.  The worker answers through
        its vectorized multi-query kernel with a single coalesced reply.
        """
        from repro.engine.executors import statistics_key

        specs = list(specs)
        key = statistics_key(specs[0])
        worker = self._pool.pick_worker(self.shard)
        install = worker is None or not self._pool.global_installed(worker, key)
        message = self._search_many_message(specs, global_statistics, install=install)
        pending = self._pool.begin_request(worker, self.shard, message, pinned=False)
        return _SearchManyPending(self, specs, global_statistics, key, pending)

    def search_shard_many(
        self, specs: "list[SearchSpec]", global_statistics: "GlobalStatistics"
    ) -> list[tuple[list[Any], np.ndarray, np.ndarray]]:
        return self.begin_search_many(specs, global_statistics).result()

    def begin_fragment(self, table: str) -> _PendingReply:
        return self._begin(
            {"op": "fragment", "table": table},
            lambda value: (value["relation"], np.asarray(value["rows"], dtype=np.int64)),
        )

    def fragment(self, table: str) -> tuple[Any, np.ndarray]:
        return self.begin_fragment(table).result()

    def triples_fragment(self) -> tuple[list, np.ndarray]:
        value = self._begin({"op": "store"}).result()
        return list(value["triples"]), np.asarray(value["rows"], dtype=np.int64)

    def close(self) -> None:
        """Workers are shared between shards; the pool owns their lifecycle."""


class WorkerPool:
    """Replicated worker processes serving the shards of one snapshot.

    ``config.workers`` sets the **base** worker count (default: one per
    shard, never more than the shard count); ``config.replicas`` multiplies
    it, so ``base * replicas`` processes run and every shard is served by
    ``replicas`` of them.  Requests route to the least-outstanding live
    replica and fail over on death; a supervisor thread restarts dead
    workers from the immutable snapshot (see the module docstring).
    """

    def __init__(
        self,
        shard_map: "ShardMap",
        config: ServingConfig | None = None,
        *,
        on_event: Callable[[str, dict[str, Any]], None] | None = None,
        workers: int | None = UNSET,
        mmap: bool = UNSET,
        start_method: str = UNSET,
        transport: str = UNSET,
        shm_threshold: int | None = UNSET,
    ):
        from repro.serving import shm as shm_policy

        config = resolve_config(
            config,
            {
                "workers": workers,
                "mmap": mmap,
                "start_method": start_method,
                "transport": transport,
                "shm_threshold": shm_threshold,
            },
            "WorkerPool",
        )
        self.config = config
        self.shard_map = shard_map
        self._observer = on_event
        num_shards = shard_map.num_shards
        requested = config.workers if config.workers is not None else num_shards
        self.base_workers = max(1, min(requested, num_shards))
        self.replicas = config.replicas
        self.num_workers = self.base_workers * self.replicas
        self._assignment: dict[int, int] = {
            shard: shard % self.base_workers for shard in shard_map.shards()
        }
        self._closed = False
        # resolve the transport here so `describe` reflects what workers do
        # (workers re-derive the same policy from the name + threshold)
        self._reply_transport = shm_policy.transport_from_name(
            config.transport, config.shm_threshold
        )
        self.transport = config.transport if self._reply_transport is not None else "inline"
        self._shm_threshold = config.shm_threshold

        self._context = multiprocessing.get_context(config.start_method)
        self._lock = threading.Lock()
        self._batch_sizes: dict[int, int] = {}  # flush occupancy -> count
        self._restarts: dict[int, int] = {}
        self._restart_at: dict[int, float] = {}
        self._failed: dict[int, str] = {}
        self._processes: list[Any] = []
        self._connections: list[_WorkerConnection] = []
        for worker in range(self.num_workers):
            process, connection = self._spawn(worker)
            self._processes.append(process)
            self._connections.append(connection)
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None
        if config.restart_workers:
            self._supervisor = threading.Thread(
                target=self._supervise, daemon=True, name="repro-pool-supervisor"
            )
            self._supervisor.start()

    def _spawn(self, worker: int) -> tuple[Any, _WorkerConnection]:
        """Start the process for slot ``worker`` over its assigned shards."""
        from repro.serving.worker import worker_main

        assigned = sorted(
            shard
            for shard, owner in self._assignment.items()
            if owner == worker % self.base_workers
        )
        parent, child = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=worker_main,
            args=(str(self.shard_map.path), assigned, child),
            kwargs={
                "mmap": self.config.mmap,
                "transport": self.transport,
                "shm_threshold": self._shm_threshold,
                "epoch": self.shard_map.epoch,
            },
            daemon=True,
            name=f"repro-shard-worker-{worker}",
        )
        process.start()
        child.close()
        return process, _WorkerConnection(
            worker,
            parent,
            process,
            max_batch_size=self.config.max_batch_size,
            batch_delay_seconds=self.config.max_batch_delay_ms / 1000.0,
            on_batch=self._note_batch,
        )

    def _note_batch(self, size: int) -> None:
        """Count one coalesced pipe write of ``size`` frames (occupancy stats)."""
        with self._lock:
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1

    def batching(self) -> dict[str, Any]:
        """Batching posture + occupancy histogram for stats endpoints.

        Occupancy counts cover the batched send path only (``max_batch_size
        > 1``); ``mean_occupancy`` is frames per pipe write — the fraction
        of the per-request syscall cost the coalescer amortized away.
        """
        with self._lock:
            sizes = dict(self._batch_sizes)
        writes = sum(sizes.values())
        frames = sum(size * count for size, count in sizes.items())
        return {
            "max_batch_size": self.config.max_batch_size,
            "max_batch_delay_ms": self.config.max_batch_delay_ms,
            "writes": writes,
            "frames": frames,
            "mean_occupancy": (frames / writes) if writes else 0.0,
            "occupancy_histogram": {
                str(size): count for size, count in sorted(sizes.items())
            },
        }

    # -- replica routing ---------------------------------------------------------

    def replica_slots(self, shard: int) -> list[int]:
        """The worker slots serving ``shard``, replica 0 first."""
        home = self._assignment[shard]
        return [rank * self.base_workers + home for rank in range(self.replicas)]

    def pick_worker(self, shard: int, exclude: set[int] | None = None) -> int | None:
        """The least-outstanding live replica for ``shard`` (None if all dead).

        ``exclude`` holds *connection identities* (``id(connection)``), not
        slot indices: a slot whose worker has been restarted since a failed
        attempt carries a fresh connection and is eligible again.
        """
        exclude = exclude or set()
        best: tuple[int, int] | None = None
        for slot in self.replica_slots(shard):
            with self._lock:
                if slot in self._failed:
                    continue
            connection = self._connections[slot]
            if id(connection) in exclude:
                continue
            if connection.death is not None or not connection.process.is_alive():
                continue
            load = (connection.outstanding(), slot)
            if best is None or load < best:
                best = load
        return None if best is None else best[1]

    def _await_replica(self, shard: int, attempted: set[int]) -> int | None:
        """Wait briefly for the supervisor to restart a replica of ``shard``.

        Only when self-healing is on: a momentary total outage of a shard's
        replicas (all mid-restart) should stall the request for a beat, not
        surface an error the supervisor is about to make untrue.
        """
        if not self.config.restart_workers:
            return None
        deadline = time.monotonic() + _REPLICA_WAIT_SECONDS
        while time.monotonic() < deadline and not self._closed:
            worker = self.pick_worker(shard, exclude=attempted)
            if worker is not None:
                return worker
            time.sleep(0.02)
        return None

    # -- request multiplexing ----------------------------------------------------

    def begin_request(
        self,
        worker: int | None,
        shard: int,
        message: dict[str, Any],
        transform: Callable[[Any], Any] | None = None,
        *,
        pinned: bool | None = None,
    ) -> _PendingReply:
        """Put one request on a replica's pipe; returns the pending reply.

        ``worker=None`` routes to the least-outstanding live replica of
        ``shard``.  An explicit worker index pins the request to that
        worker (no failover) unless ``pinned=False`` makes it merely the
        preferred first attempt.
        """
        if self._closed:
            raise EngineError("worker pool is closed")
        op = message.get("op")
        if pinned is None:
            pinned = worker is not None
        budget = 0 if pinned else self.config.retry_budget
        attempted: set[int] = set()  # id(connection) per attempt
        while True:
            if worker is None:
                worker = self.pick_worker(shard, exclude=attempted)
                if worker is None:
                    worker = self._await_replica(shard, attempted)
                if worker is None:
                    raise self._no_replica_error(shard, op)
            connection = self._connections[worker]
            attempted.add(id(connection))
            try:
                future = connection.send(message)
                break
            except _WorkerDied as died:
                if pinned or budget <= 0:
                    raise self._died_error(worker, shard, op, str(died)) from died
                budget -= 1
                self._emit(
                    "failover",
                    {
                        "shard": shard,
                        "op": op,
                        "from_worker": worker,
                        "stage": "send",
                        "reason": str(died),
                    },
                )
                worker = None
        return _PendingReply(
            self,
            worker,
            shard,
            op,
            future,
            transform,
            connection=connection,
            message=message,
            pinned=pinned,
            attempted=attempted,
            retries_left=budget,
        )

    def request(self, worker: int, shard: int, message: dict[str, Any]) -> Any:
        """Send one codec frame to ``worker`` (pinned) and wait for its reply."""
        return self.begin_request(worker, shard, message).result()

    def _failover(self, pending: _PendingReply, reason: str) -> bool:
        """Re-route ``pending`` to a surviving replica; False when impossible."""
        if pending.pinned or pending.message is None or self._closed:
            return False
        while pending.retries_left > 0:
            worker = self.pick_worker(pending.shard, exclude=pending.attempted)
            if worker is None:
                worker = self._await_replica(pending.shard, pending.attempted)
            if worker is None:
                return False
            pending.retries_left -= 1
            connection = self._connections[worker]
            pending.attempted.add(id(connection))
            try:
                future = connection.send(pending.message)
            except _WorkerDied:
                continue
            self._emit(
                "failover",
                {
                    "shard": pending.shard,
                    "op": pending.op,
                    "from_worker": pending.worker,
                    "to_worker": worker,
                    "stage": "reply",
                    "reason": reason,
                },
            )
            pending.worker = worker
            pending.connection = connection
            pending._future = future
            return True
        return False

    def _resolve(self, pending: _PendingReply, timeout: float | None) -> dict[str, Any]:
        """Wait for a pending reply's frame and decode it (shm-aware).

        A worker death — or a poisoned connection — triggers transparent
        failover to a surviving replica for un-pinned requests, bounded by
        the retry budget; pinned requests surface the attributed error.
        """
        while True:
            connection = pending.connection or self._connections[pending.worker]
            try:
                kind, body = connection.wait(pending._future, timeout)
            except _WorkerDied as died:
                if self._failover(pending, str(died)):
                    continue
                raise self._died_error(
                    pending.worker, pending.shard, pending.op, str(died)
                ) from died
            try:
                return resolve_tagged(kind, body)
            except EngineError as error:
                # a corrupt reply frame means the transport itself can no
                # longer be trusted: poison the connection so later requests
                # get the clean worker-died error, then fail over if allowed
                connection.mark_dead(f"sent a corrupt reply frame: {error}")
                if self._failover(pending, f"corrupt reply: {error}"):
                    continue
                raise EngineError(
                    f"shard worker {pending.worker} (serving shard {pending.shard}) sent a "
                    f"corrupt reply to {pending.op!r}: {error}; the connection has been "
                    "closed — restart the pool to recover"
                ) from error

    def _unwrap(self, pending: _PendingReply, reply: dict[str, Any]) -> Any:
        if not reply.get("ok"):
            raise EngineError(
                f"shard worker {pending.worker} failed {pending.op!r} for shard "
                f"{pending.shard}: {reply.get('error')}"
            )
        return reply.get("value")

    def _died_error(self, worker: int, shard: int, op: str | None, reason: str) -> EngineError:
        process = self._processes[worker]
        return EngineError(
            f"shard worker {worker} (serving shard {shard}) died "
            f"(exit code {process.exitcode}) during {op!r}: {reason}; "
            "restart the pool to recover"
        )

    def _no_replica_error(self, shard: int, op: str | None) -> EngineError:
        return EngineError(
            f"every replica serving shard {shard} has died; request {op!r} has no "
            f"surviving worker (replicas={self.replicas}) — waiting for the "
            "supervisor to restart one, or restart the pool to recover"
        )

    # -- self-healing ------------------------------------------------------------

    def _emit(self, name: str, detail: dict[str, Any]) -> None:
        observer = self._observer
        if observer is None:
            return
        try:
            observer(name, dict(detail))
        except Exception:  # noqa: BLE001 - observers must never break serving
            pass

    def _supervise(self) -> None:
        """Health-check loop: detect dead workers, restart with backoff."""
        while not self._stop.wait(self.config.health_interval_seconds):
            if self._closed:
                return
            self._heal(time.monotonic())

    def _heal(self, now: float) -> None:
        for worker in range(self.num_workers):
            if self._closed:
                return
            connection = self._connections[worker]
            dead = connection.death is not None or not connection.process.is_alive()
            if not dead:
                continue
            due = False
            failed_now = False
            scheduled_delay: float | None = None
            with self._lock:
                if worker in self._failed:
                    continue
                count = self._restarts.get(worker, 0)
                if count >= self.config.max_restarts:
                    self._failed[worker] = (
                        f"restart budget exhausted after {count} restarts"
                    )
                    failed_now = True
                else:
                    scheduled = self._restart_at.get(worker)
                    if scheduled is None:
                        scheduled_delay = min(
                            self.config.restart_backoff_cap_seconds,
                            self.config.restart_backoff_seconds * (2**count),
                        )
                        self._restart_at[worker] = now + scheduled_delay
                    else:
                        due = now >= scheduled
            # emit outside the lock: observers may inspect pool state
            if failed_now:
                self._emit(
                    "worker-failed",
                    {"worker": worker, "restarts": self.config.max_restarts},
                )
            elif scheduled_delay is not None:
                self._emit(
                    "worker-dead",
                    {
                        "worker": worker,
                        "reason": connection.death or "process exited",
                        "restart_in_seconds": scheduled_delay,
                    },
                )
            elif due:
                self._restart(worker)

    def _restart(self, worker: int) -> None:
        """Replace slot ``worker``'s process with a fresh one (same shards)."""
        old_connection = self._connections[worker]
        old_process = self._processes[worker]
        old_connection.mark_dead("worker is being restarted")
        old_connection.shutdown()
        if old_process.is_alive():
            old_process.terminate()
        old_process.join(timeout=_JOIN_TIMEOUT_SECONDS)
        process, connection = self._spawn(worker)
        with self._lock:
            self._processes[worker] = process
            self._connections[worker] = connection
            self._restarts[worker] = self._restarts.get(worker, 0) + 1
            self._restart_at.pop(worker, None)
            count = self._restarts[worker]
        self._emit("worker-restart", {"worker": worker, "pid": process.pid, "restarts": count})

    @property
    def degraded(self) -> bool:
        """True while any worker slot is dead, restarting, or failed."""
        with self._lock:
            if self._failed:
                return True
        for connection in list(self._connections):
            if connection.death is not None or not connection.process.is_alive():
                return True
        return False

    def replication(self) -> dict[str, Any]:
        """Replication + self-healing posture for health/stats endpoints."""
        with self._lock:
            restarts = sum(self._restarts.values())
            failed = sorted(self._failed)
        return {
            "replicas": self.replicas,
            "base_workers": self.base_workers,
            "degraded": self.degraded,
            "restarts": restarts,
            "failed_workers": failed,
            "retry_budget": self.config.retry_budget,
            "self_healing": self.config.restart_workers,
        }

    # -- worker-side global-statistics cache bookkeeping -------------------------

    def global_installed(self, worker: int, key: tuple) -> bool:
        """Whether ``worker`` is known to hold the global statistics for ``key``."""
        return key in self._connections[worker].installed_globals

    def mark_global_installed(self, worker: int, key: tuple) -> None:
        self._connections[worker].installed_globals.add(key)

    # -- introspection -----------------------------------------------------------

    def ping(self) -> list[dict[str, Any]]:
        """Liveness info from every worker (pid + assigned shards)."""
        return [
            self.request(worker, -1, {"op": "ping"}) for worker in range(self.num_workers)
        ]

    def liveness(self) -> list[dict[str, Any]]:
        """Per-worker process liveness without a worker round-trip.

        Unlike :meth:`ping` this never blocks on a busy or wedged worker —
        it only inspects the child processes — so health endpoints can call
        it on every request.
        """
        with self._lock:
            restarts = dict(self._restarts)
            failed = dict(self._failed)
        report = []
        for worker in range(self.num_workers):
            connection = self._connections[worker]
            process = self._processes[worker]
            report.append(
                {
                    "worker": worker,
                    "pid": process.pid,
                    "alive": connection.death is None and process.is_alive(),
                    "shards": sorted(
                        shard
                        for shard, owner in self._assignment.items()
                        if owner == worker % self.base_workers
                    ),
                    "replica": worker // self.base_workers,
                    "restarts": restarts.get(worker, 0),
                    "failed": failed.get(worker),
                }
            )
        return report

    def shard_backends(self) -> list[PoolShard]:
        """One backend proxy per shard, in shard order."""
        return [
            PoolShard(self, self._assignment[shard], shard)
            for shard in self.shard_map.shards()
        ]

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Stop the supervisor, ask every worker to exit, then reap."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._supervisor is not None:
            # the supervisor may be mid-restart; joining first means the
            # process/connection lists are stable for the sweep below
            self._supervisor.join(timeout=_JOIN_TIMEOUT_SECONDS)
        for connection in self._connections:
            try:
                # wait() (not Future.result) so this thread leads the receive
                # and actually drains the worker's acknowledgement frame
                connection.wait(connection.send({"op": "close"}), _JOIN_TIMEOUT_SECONDS)
            except Exception:  # noqa: BLE001 - the worker may already be gone
                pass
            finally:
                connection.shutdown()
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT_SECONDS)
            if process.is_alive():  # pragma: no cover - stuck worker safety net
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_SECONDS)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
