"""The worker pool: persistent shard processes behind the pool executor.

:class:`WorkerPool` spawns ``workers`` persistent processes (default: one
per shard) over a partitioned snapshot, assigns shards round-robin, and
multiplexes codec-framed requests over one duplex pipe per worker.  Each
worker memmaps its shards (OS page cache shared across workers on one
host), so pool start-up is O(process spawn), not O(data).

**Pipelining.**  Every request frame carries an 8-byte request id
(:func:`~repro.serving.codec.encode_tagged`); a dedicated reader thread
per connection matches reply frames to futures by id, so many requests can
be in flight on one pipe at once — the send lock is held only for the
write, never for the round trip.  Issuing requests therefore costs one
pipe write, and the scatter step overlaps every worker without needing a
thread per backend.

**Result transport.**  Small replies travel inline on the pipe; replies at
or above the shared-memory threshold are published to
:mod:`repro.serving.shm` segments by the worker and only a control frame
crosses the pipe (``transport="inline"`` forces the pipe codec everywhere,
e.g. for CI parity runs).  Workers also cache the global collection
statistics a search needs, keyed like the executor's own cache, so steady
state search requests carry only terms and a key — not the df/cf tables.

:meth:`WorkerPool.shard_backends` returns one :class:`PoolShard` proxy per
shard — the same backend interface :class:`~repro.engine.executors.InProcessShard`
implements, so :class:`~repro.engine.executors.PoolExecutor` reuses the
scatter-gather logic unchanged.  A worker that dies mid-request — or sends
a frame the codec cannot decode — surfaces as a clean
:class:`~repro.errors.EngineError` naming the shard and worker, the
connection is marked dead, and every subsequent request fails fast with
the same attribution instead of reading garbage frames.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.errors import EngineError
from repro.serving.codec import encode_tagged, resolve_tagged, split_tagged

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.executors import SearchSpec
    from repro.ir.statistics import GlobalStatistics
    from repro.storage.shards import ShardMap

_JOIN_TIMEOUT_SECONDS = 5.0

#: reply code a worker sends when it needs the global statistics re-sent
GLOBAL_MISSING = "global-missing"


class _WorkerDied(Exception):
    """Internal marker: the connection to a worker is unusable."""


#: how long a receive leader blocks in ``poll`` before re-checking state
_POLL_SECONDS = 0.1


class _WorkerConnection:
    """One duplex pipe to a worker process, multiplexed by request id.

    Receiving is leader/follower, not a dedicated reader thread: whichever
    waiting caller holds the receive lock drains frames (resolving futures
    by request id) until its own reply arrives, then hands leadership to
    the next waiter via the turnstile condition.  In the common serial case
    the caller that sent the request also reads the reply — no cross-thread
    hand-off, which on a busy host saves two context switches per reply.
    """

    def __init__(self, worker: int, connection: Any, process: Any):
        self.worker = worker
        self.connection = connection
        self.process = process
        self.installed_globals: set[tuple] = set()
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._turnstile = threading.Condition()
        self._pending: dict[int, Future] = {}
        self._next_id = 0
        self._death: str | None = None

    # -- sending -----------------------------------------------------------------

    def send(self, message: dict[str, Any]) -> Future:
        """Issue one request; returns a future resolving to (kind, body)."""
        with self._state_lock:
            if self._death is not None:
                raise _WorkerDied(self._death)
            self._next_id += 1
            request_id = self._next_id
            future: Future = Future()
            self._pending[request_id] = future
        try:
            with self._send_lock:
                self.connection.send_bytes(encode_tagged(request_id, message))
        except (BrokenPipeError, ConnectionResetError, OSError, ValueError) as error:
            self.mark_dead(f"pipe write failed: {error!r}")
        return future

    # -- receiving ---------------------------------------------------------------

    def wait(self, future: Future, timeout: float | None = None) -> tuple[bytes, bytes]:
        """Wait for ``future``'s reply frame, draining the pipe if leading.

        Raises the future's exception (:class:`_WorkerDied`) on a dead
        connection and :class:`concurrent.futures.TimeoutError` on expiry.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while not future.done():
            if deadline is not None and time.monotonic() >= deadline:
                break
            if self._recv_lock.acquire(blocking=False):
                try:
                    self._lead(future, deadline)
                finally:
                    self._recv_lock.release()
                    with self._turnstile:
                        self._turnstile.notify_all()
            else:
                with self._turnstile:
                    # re-check under the turnstile lock: the leader may have
                    # exited between our failed acquire and this wait, and
                    # its notify_all requires the lock we now hold — so a
                    # free receive lock or a done future cannot be missed
                    if future.done() or not self._recv_lock.locked():
                        continue
                    self._turnstile.wait(_POLL_SECONDS)
        return future.result(timeout=0)

    def _lead(self, future: Future, deadline: float | None) -> None:
        """Drain reply frames until ``future`` resolves (or death/deadline)."""
        while not future.done() and self._death is None:
            try:
                if deadline is not None:
                    # bounded wait: poll so the deadline is honored even if
                    # the worker never replies (close() uses this path)
                    if time.monotonic() >= deadline:
                        return
                    if not self.connection.poll(_POLL_SECONDS):
                        continue
                data = self.connection.recv_bytes()
            except (EOFError, OSError):
                self.mark_dead("connection closed")
                return
            try:
                request_id, kind, body = split_tagged(data)
            except EngineError as error:
                self.mark_dead(f"sent an unreadable frame: {error}")
                return
            with self._state_lock:
                target = self._pending.pop(request_id, None)
            if target is not None and not target.done():
                target.set_result((kind, body))
                if target is not future:
                    with self._turnstile:
                        self._turnstile.notify_all()

    def mark_dead(self, reason: str) -> None:
        """Fail every in-flight request and reject all future ones."""
        with self._state_lock:
            if self._death is None:
                self._death = reason
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(_WorkerDied(reason))
        with self._turnstile:
            self._turnstile.notify_all()

    @property
    def death(self) -> str | None:
        return self._death

    def shutdown(self) -> None:
        try:
            self.connection.close()
        except OSError:
            pass


class _PendingReply:
    """One in-flight request: resolves, attributes errors, post-processes."""

    def __init__(
        self,
        pool: "WorkerPool",
        worker: int,
        shard: int,
        op: str | None,
        future: Future,
        transform: Callable[[Any], Any] | None = None,
    ):
        self._pool = pool
        self.worker = worker
        self.shard = shard
        self.op = op
        self._future = future
        self._transform = transform

    def reply(self, timeout: float | None = None) -> dict[str, Any]:
        """The decoded raw reply dict (``ok`` may be false)."""
        return self._pool._resolve(self, timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The reply's value; raises attributed ``EngineError`` on failure."""
        value = self._pool._unwrap(self, self.reply(timeout))
        return self._transform(value) if self._transform is not None else value


class _SearchPending:
    """A pipelined ``search`` request with global-statistics re-send retry."""

    def __init__(
        self,
        shard_proxy: "PoolShard",
        spec: "SearchSpec",
        global_statistics: "GlobalStatistics",
        key: tuple,
        pending: _PendingReply,
    ):
        self._proxy = shard_proxy
        self._spec = spec
        self._global = global_statistics
        self._key = key
        self._pending = pending

    def result(self, timeout: float | None = None) -> tuple[list[Any], np.ndarray, np.ndarray]:
        pool = self._proxy._pool
        reply = self._pending.reply(timeout)
        if not reply.get("ok") and reply.get("code") == GLOBAL_MISSING:
            # the worker lost (or never had) the cached global statistics;
            # re-issue the request carrying the full payload
            message = self._proxy._search_message(self._spec, self._global, install=True)
            self._pending = pool.begin_request(
                self._pending.worker, self._pending.shard, message
            )
            reply = self._pending.reply(timeout)
        value = pool._unwrap(self._pending, reply)
        pool.mark_global_installed(self._pending.worker, self._key)
        return (
            list(value["doc_ids"]),
            np.asarray(value["scores"], dtype=np.float64),
            np.asarray(value["rows"], dtype=np.int64),
        )


class PoolShard:
    """Backend proxy for one shard served by a pool worker.

    Every ``begin_*`` method puts the request on the wire immediately and
    returns a pending reply; the blocking methods are ``begin`` + wait.
    :attr:`pipelined` tells the scatter step it can fan out requests from
    one thread and overlap all workers.
    """

    pipelined = True

    def __init__(self, pool: "WorkerPool", worker: int, shard: int):
        self._pool = pool
        self.worker = worker
        self.shard = shard

    def _begin(
        self, message: dict[str, Any], transform: Callable[[Any], Any] | None = None
    ) -> _PendingReply:
        message["shard"] = self.shard
        return self._pool.begin_request(self.worker, self.shard, message, transform)

    def begin_segment(self, plan: Any, table: str) -> _PendingReply:
        return self._begin({"op": "segment", "plan": plan, "table": table})

    def evaluate_segment(self, plan: Any, table: str) -> Any:
        return self.begin_segment(plan, table).result()

    def begin_statistics_summary(self, spec: "SearchSpec") -> _PendingReply:
        from repro.ir.statistics import GlobalStatistics

        return self._begin({"op": "stats", "spec": spec}, GlobalStatistics.from_payload)

    def statistics_summary(self, spec: "SearchSpec") -> "GlobalStatistics":
        return self.begin_statistics_summary(spec).result()

    def _search_message(
        self, spec: "SearchSpec", global_statistics: "GlobalStatistics", *, install: bool
    ) -> dict[str, Any]:
        message: dict[str, Any] = {"op": "search", "spec": spec, "shard": self.shard}
        if install:
            message["global"] = global_statistics.to_payload()
        return message

    def begin_search(
        self, spec: "SearchSpec", global_statistics: "GlobalStatistics"
    ) -> _SearchPending:
        from repro.engine.executors import statistics_key

        key = statistics_key(spec)
        install = not self._pool.global_installed(self.worker, key)
        message = self._search_message(spec, global_statistics, install=install)
        pending = self._pool.begin_request(self.worker, self.shard, message)
        return _SearchPending(self, spec, global_statistics, key, pending)

    def search_shard(
        self, spec: "SearchSpec", global_statistics: "GlobalStatistics"
    ) -> tuple[list[Any], np.ndarray, np.ndarray]:
        return self.begin_search(spec, global_statistics).result()

    def begin_fragment(self, table: str) -> _PendingReply:
        return self._begin(
            {"op": "fragment", "table": table},
            lambda value: (value["relation"], np.asarray(value["rows"], dtype=np.int64)),
        )

    def fragment(self, table: str) -> tuple[Any, np.ndarray]:
        return self.begin_fragment(table).result()

    def triples_fragment(self) -> tuple[list, np.ndarray]:
        value = self._begin({"op": "store"}).result()
        return list(value["triples"]), np.asarray(value["rows"], dtype=np.int64)

    def close(self) -> None:
        """Workers are shared between shards; the pool owns their lifecycle."""


class WorkerPool:
    """Persistent worker processes serving the shards of one snapshot."""

    def __init__(
        self,
        shard_map: "ShardMap",
        *,
        workers: int | None = None,
        mmap: bool = True,
        start_method: str = "spawn",
        transport: str = "auto",
        shm_threshold: int | None = None,
    ):
        from repro.serving import shm as shm_policy
        from repro.serving.worker import worker_main

        self.shard_map = shard_map
        num_shards = shard_map.num_shards
        self.num_workers = max(1, min(workers if workers is not None else num_shards, num_shards))
        self._assignment: dict[int, int] = {
            shard: shard % self.num_workers for shard in range(num_shards)
        }
        self._closed = False
        # resolve the transport here so `describe` reflects what workers do
        # (workers re-derive the same policy from the name + threshold)
        self._reply_transport = shm_policy.transport_from_name(transport, shm_threshold)
        self.transport = transport if self._reply_transport is not None else "inline"
        self._shm_threshold = shm_threshold

        context = multiprocessing.get_context(start_method)
        self._processes = []
        self._connections: list[_WorkerConnection] = []
        for worker in range(self.num_workers):
            assigned = sorted(
                shard for shard, owner in self._assignment.items() if owner == worker
            )
            parent, child = context.Pipe(duplex=True)
            process = context.Process(
                target=worker_main,
                args=(str(shard_map.path), assigned, child),
                kwargs={
                    "mmap": mmap,
                    "transport": self.transport,
                    "shm_threshold": shm_threshold,
                },
                daemon=True,
                name=f"repro-shard-worker-{worker}",
            )
            process.start()
            child.close()
            self._processes.append(process)
            self._connections.append(_WorkerConnection(worker, parent, process))

    # -- request multiplexing ----------------------------------------------------

    def begin_request(
        self,
        worker: int,
        shard: int,
        message: dict[str, Any],
        transform: Callable[[Any], Any] | None = None,
    ) -> _PendingReply:
        """Put one request on a worker's pipe; returns the pending reply."""
        if self._closed:
            raise EngineError("worker pool is closed")
        connection = self._connections[worker]
        op = message.get("op")
        try:
            future = connection.send(message)
        except _WorkerDied as died:
            raise self._died_error(worker, shard, op, str(died)) from died
        return _PendingReply(self, worker, shard, op, future, transform)

    def request(self, worker: int, shard: int, message: dict[str, Any]) -> Any:
        """Send one codec frame to ``worker`` and wait for its reply."""
        return self.begin_request(worker, shard, message).result()

    def _resolve(self, pending: _PendingReply, timeout: float | None) -> dict[str, Any]:
        """Wait for a pending reply's frame and decode it (shm-aware)."""
        connection = self._connections[pending.worker]
        try:
            kind, body = connection.wait(pending._future, timeout)
        except _WorkerDied as died:
            raise self._died_error(pending.worker, pending.shard, pending.op, str(died)) from died
        try:
            return resolve_tagged(kind, body)
        except EngineError as error:
            # a corrupt reply frame means the transport itself can no longer
            # be trusted: attribute it and stop using this connection — later
            # requests get the clean worker-died error, never garbage frames
            connection.mark_dead(f"sent a corrupt reply frame: {error}")
            raise EngineError(
                f"shard worker {pending.worker} (serving shard {pending.shard}) sent a "
                f"corrupt reply to {pending.op!r}: {error}; the connection has been "
                "closed — restart the pool to recover"
            ) from error

    def _unwrap(self, pending: _PendingReply, reply: dict[str, Any]) -> Any:
        if not reply.get("ok"):
            raise EngineError(
                f"shard worker {pending.worker} failed {pending.op!r} for shard "
                f"{pending.shard}: {reply.get('error')}"
            )
        return reply.get("value")

    def _died_error(self, worker: int, shard: int, op: str | None, reason: str) -> EngineError:
        process = self._processes[worker]
        return EngineError(
            f"shard worker {worker} (serving shard {shard}) died "
            f"(exit code {process.exitcode}) during {op!r}: {reason}; "
            "restart the pool to recover"
        )

    # -- worker-side global-statistics cache bookkeeping -------------------------

    def global_installed(self, worker: int, key: tuple) -> bool:
        """Whether ``worker`` is known to hold the global statistics for ``key``."""
        return key in self._connections[worker].installed_globals

    def mark_global_installed(self, worker: int, key: tuple) -> None:
        self._connections[worker].installed_globals.add(key)

    # -- introspection -----------------------------------------------------------

    def ping(self) -> list[dict[str, Any]]:
        """Liveness info from every worker (pid + assigned shards)."""
        return [
            self.request(worker, -1, {"op": "ping"}) for worker in range(self.num_workers)
        ]

    def liveness(self) -> list[dict[str, Any]]:
        """Per-worker process liveness without a worker round-trip.

        Unlike :meth:`ping` this never blocks on a busy or wedged worker —
        it only inspects the child processes — so health endpoints can call
        it on every request.
        """
        return [
            {
                "worker": worker,
                "pid": process.pid,
                "alive": process.is_alive(),
                "shards": sorted(
                    shard
                    for shard, owner in self._assignment.items()
                    if owner == worker
                ),
            }
            for worker, process in enumerate(self._processes)
        ]

    def shard_backends(self) -> list[PoolShard]:
        """One backend proxy per shard, in shard order."""
        return [
            PoolShard(self, self._assignment[shard], shard)
            for shard in range(self.shard_map.num_shards)
        ]

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Ask every worker to exit, then reap (terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                # wait() (not Future.result) so this thread leads the receive
                # and actually drains the worker's acknowledgement frame
                connection.wait(connection.send({"op": "close"}), _JOIN_TIMEOUT_SECONDS)
            except Exception:  # noqa: BLE001 - the worker may already be gone
                pass
            finally:
                connection.shutdown()
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT_SECONDS)
            if process.is_alive():  # pragma: no cover - stuck worker safety net
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_SECONDS)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
