"""Multi-process serving: worker pools and the request router.

This package turns a partitioned snapshot (:mod:`repro.storage.shards`)
into a serving deployment:

* :mod:`repro.serving.codec` — a small length-prefixed binary codec for
  plans and relations, plus the tagged (request-id-prefixed) frames the
  pool pipelines over every router↔worker pipe;
* :mod:`repro.serving.shm` — the shared-memory result path: large reply
  frames travel out-of-band through ``multiprocessing.shared_memory``
  segments, with only a control frame on the pipe (inline fallback when
  the platform lacks shared memory);
* :mod:`repro.serving.worker` — the worker process main loop: memmap the
  assigned shards, answer segment-evaluation / statistics / search /
  fragment requests, caching global statistics between searches;
* :mod:`repro.serving.pool` — :class:`WorkerPool`: spawns persistent
  workers, assigns shards, multiplexes pipelined requests (the transport
  behind :class:`~repro.engine.executors.PoolExecutor`);
* :mod:`repro.serving.router` — :class:`Router`: owns the engine (sharded
  or pooled) and admission-queues requests;
* :mod:`repro.serving.frontend` — the asyncio HTTP front end
  (``POST /query``, ``GET /healthz``, ``GET /statz``): parse and admit on
  the event loop, execute admitted requests on a small thread pool.

The CLI front end is ``python -m repro serve`` (and ``shard`` to
re-partition an existing snapshot).
"""

from repro.serving.blueprint import Blueprint, BlueprintManager
from repro.serving.config import ServingConfig
from repro.serving.pool import WorkerPool
from repro.serving.router import Router

__all__ = ["Blueprint", "BlueprintManager", "Router", "ServingConfig", "WorkerPool"]
