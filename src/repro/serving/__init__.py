"""Multi-process serving: worker pools and the request router.

This package turns a partitioned snapshot (:mod:`repro.storage.shards`)
into a serving deployment:

* :mod:`repro.serving.codec` — a small length-prefixed binary codec for
  plans and relations, used on every router↔worker pipe;
* :mod:`repro.serving.worker` — the worker process main loop: memmap the
  assigned shards, answer segment-evaluation / statistics / search /
  fragment requests;
* :mod:`repro.serving.pool` — :class:`WorkerPool`: spawns persistent
  workers, assigns shards, multiplexes requests (the transport behind
  :class:`~repro.engine.executors.PoolExecutor`);
* :mod:`repro.serving.router` — :class:`Router`: owns the engine (sharded
  or pooled), admission-queues requests, and exposes a minimal threaded
  HTTP front end (``POST /query``, ``GET /healthz``).

The CLI front end is ``python -m repro serve`` (and ``shard`` to
re-partition an existing snapshot).
"""

from repro.serving.pool import WorkerPool
from repro.serving.router import Router

__all__ = ["Router", "WorkerPool"]
