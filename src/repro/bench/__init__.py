"""Benchmark harness utilities.

The benchmarks under ``benchmarks/`` use pytest-benchmark for the headline
timings; this package provides the supporting pieces they share:

* :mod:`repro.bench.harness` — timing helpers, parameter sweeps and latency
  statistics (mean / median / p95), plus throughput extrapolation to the
  requests-per-day figures the paper reports;
* :mod:`repro.bench.reporting` — plain-text result tables, printed by each
  benchmark so the rows of EXPERIMENTS.md can be regenerated directly from
  the benchmark output.
"""

from repro.bench.harness import LatencyStats, Sweep, measure_latency, throughput_per_day
from repro.bench.reporting import ResultTable

__all__ = [
    "LatencyStats",
    "ResultTable",
    "Sweep",
    "measure_latency",
    "throughput_per_day",
]
