"""Plain-text result tables for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


class ResultTable:
    """An aligned text table accumulated row by row and printed at the end.

    Every benchmark builds one of these and prints it, so the series the paper
    reports (latency vs. collection size, strategy vs. branch, …) appear
    directly in the benchmark output and can be copied into EXPERIMENTS.md.
    """

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row; accepts positional values or keyword values by column name."""
        if values and named:
            raise ValueError("pass either positional or named values, not both")
        if named:
            values = tuple(named.get(column, "") for column in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values ({self.columns}), got {len(values)}"
            )
        self.rows.append([_format(value) for value in values])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "-" * len(self.title)]
        lines.append(" | ".join(column.ljust(width) for column, width in zip(self.columns, widths)))
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console output helper
        print()
        print(self.render())
        print()


def _format(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
