"""Timing helpers and parameter sweeps for the benchmark suite."""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from itertools import product
from typing import Any


@dataclass
class LatencyStats:
    """Latency statistics over a set of timed runs (all values in milliseconds)."""

    samples_ms: list[float]

    @property
    def count(self) -> int:
        return len(self.samples_ms)

    @property
    def mean_ms(self) -> float:
        return statistics.fmean(self.samples_ms) if self.samples_ms else 0.0

    @property
    def median_ms(self) -> float:
        return statistics.median(self.samples_ms) if self.samples_ms else 0.0

    @property
    def p95_ms(self) -> float:
        if not self.samples_ms:
            return 0.0
        ordered = sorted(self.samples_ms)
        index = min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))
        return ordered[index]

    @property
    def min_ms(self) -> float:
        return min(self.samples_ms) if self.samples_ms else 0.0

    @property
    def max_ms(self) -> float:
        return max(self.samples_ms) if self.samples_ms else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 3),
            "median_ms": round(self.median_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "min_ms": round(self.min_ms, 3),
            "max_ms": round(self.max_ms, 3),
        }


def measure_latency(
    operation: Callable[[], Any],
    *,
    repetitions: int = 5,
    warmup: int = 0,
) -> LatencyStats:
    """Time ``operation`` ``repetitions`` times (after ``warmup`` unmeasured runs)."""
    for _ in range(warmup):
        operation()
    samples: list[float] = []
    for _ in range(repetitions):
        started = time.perf_counter()
        operation()
        samples.append((time.perf_counter() - started) * 1000.0)
    return LatencyStats(samples_ms=samples)


def throughput_per_day(mean_latency_ms: float, *, concurrency: int = 1) -> float:
    """Extrapolate sustainable requests/day from a mean per-request latency.

    The paper reports 150,000 requests/day at ~150 ms per request on a single
    VM; this helper converts measured latencies into the same unit so the
    benchmark output can be compared against that figure.
    """
    if mean_latency_ms <= 0:
        return float("inf")
    per_second = 1000.0 / mean_latency_ms * concurrency
    return per_second * 86_400


@dataclass
class Sweep:
    """A cartesian parameter sweep: named parameter lists expanded to combinations."""

    parameters: dict[str, Sequence[Any]]

    def combinations(self) -> Iterable[dict[str, Any]]:
        names = list(self.parameters)
        for values in product(*(self.parameters[name] for name in names)):
            yield dict(zip(names, values))

    def __len__(self) -> int:
        total = 1
        for values in self.parameters.values():
            total *= len(values)
        return total
