"""Positional column references (``$1``, ``$2``, …) for PRA predicates.

SpinQL refers to columns by position (``SELECT [$2="category" and $3="toy"]``).
A :class:`PositionalRef` is an ordinary engine expression that resolves the
position against the input relation at evaluation time, skipping the trailing
probability column so that ``$1`` always refers to the first *value* column.
"""

from __future__ import annotations

from repro.errors import ExpressionError
from repro.pra.relation import PROBABILITY_COLUMN
from repro.relational.column import Column, DataType
from repro.relational.expressions import Expression
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class PositionalRef(Expression):
    """A 1-based positional reference to a value column of the input relation."""

    def __init__(self, position: int):
        if position < 1:
            raise ExpressionError("positional references are 1-based ($1, $2, ...)")
        self.position = position

    def _resolve(self, schema: Schema) -> str:
        value_columns = [name for name in schema.names if name != PROBABILITY_COLUMN]
        if self.position > len(value_columns):
            raise ExpressionError(
                f"positional reference ${self.position} out of range; "
                f"the relation has {len(value_columns)} value columns"
            )
        return value_columns[self.position - 1]

    def evaluate(self, relation: Relation, functions) -> Column:
        return relation.column(self._resolve(relation.schema))

    def output_type(self, schema: Schema, functions) -> DataType:
        return schema.dtype_of(self._resolve(schema))

    def references(self) -> set[str]:
        # Positions cannot be resolved without a schema; report no names so the
        # optimizer never pushes these predicates across operators that would
        # change positions.
        return set()

    def to_sql(self) -> str:
        return f"${self.position}"

    def __repr__(self) -> str:
        return f"${self.position}"


def positional(position: int) -> PositionalRef:
    """Shorthand constructor mirroring :func:`repro.relational.expressions.col`."""
    return PositionalRef(position)
