"""Evaluation of PRA plans against a relational database.

The evaluator resolves :class:`~repro.pra.plan.PraScan` nodes through the
database catalog, lifting ordinary relations to probability 1.0, and applies
the probability-combination kernels of :mod:`repro.pra.operators` node by
node.  The positional column references used by SpinQL are resolved against
the value columns of each intermediate relation.

:class:`~repro.pra.plan.PraParam` nodes are resolved against the ``bindings``
mapping passed to :meth:`PRAEvaluator.evaluate`, which is how the engine
facade executes one compiled plan against many different parameter values.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import PRAError
from repro.pra import operators as pra_operators
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraParam,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraValues,
    PraWeight,
)
from repro.pra.relation import ProbabilisticRelation
from repro.relational.database import Database


class PRAEvaluator:
    """Evaluates PRA plans against a :class:`~repro.relational.database.Database`."""

    def __init__(self, database: Database):
        self.database = database

    def evaluate(
        self,
        plan: PraPlan,
        *,
        bindings: Mapping[str, ProbabilisticRelation] | None = None,
    ) -> ProbabilisticRelation:
        """Evaluate ``plan`` and return the resulting probabilistic relation.

        ``bindings`` maps :class:`~repro.pra.plan.PraParam` names to the
        probabilistic relations to substitute for them.
        """
        if isinstance(plan, PraScan):
            relation = self.database.query(plan.table)
            return ProbabilisticRelation.lift(relation)
        if isinstance(plan, PraValues):
            return plan.relation
        if isinstance(plan, PraParam):
            if bindings is None or plan.name not in bindings:
                available = sorted(bindings) if bindings else []
                raise PRAError(
                    f"unbound plan parameter {plan.name!r}; bound parameters: {available}"
                )
            return bindings[plan.name]
        if isinstance(plan, PraSelect):
            child = self.evaluate(plan.child, bindings=bindings)
            return pra_operators.select(child, plan.predicate, self.database.functions)
        if isinstance(plan, PraProject):
            child = self.evaluate(plan.child, bindings=bindings)
            columns = self._resolve_positions(child, plan.positions)
            return pra_operators.project(
                child, columns, plan.assumption, output_names=plan.output_names
            )
        if isinstance(plan, PraJoin):
            left = self.evaluate(plan.left, bindings=bindings)
            right = self.evaluate(plan.right, bindings=bindings)
            conditions = [
                (
                    self._resolve_position(left, left_position),
                    self._resolve_position(right, right_position),
                )
                for left_position, right_position in plan.conditions
            ]
            return pra_operators.join(left, right, conditions, plan.assumption)
        if isinstance(plan, PraUnite):
            left = self.evaluate(plan.left, bindings=bindings)
            right = self.evaluate(plan.right, bindings=bindings)
            return pra_operators.unite(left, right, plan.assumption)
        if isinstance(plan, PraSubtract):
            left = self.evaluate(plan.left, bindings=bindings)
            right = self.evaluate(plan.right, bindings=bindings)
            return pra_operators.subtract(left, right)
        if isinstance(plan, PraBayes):
            child = self.evaluate(plan.child, bindings=bindings)
            evidence = self._resolve_positions(child, plan.evidence_positions)
            return pra_operators.bayes(child, evidence)
        if isinstance(plan, PraWeight):
            child = self.evaluate(plan.child, bindings=bindings)
            return pra_operators.weight(child, plan.factor)
        if isinstance(plan, PraTop):
            child = self.evaluate(plan.child, bindings=bindings)
            return pra_operators.top(child, plan.k)
        raise PRAError(f"unknown PRA plan node {type(plan).__name__}")

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _resolve_position(relation: ProbabilisticRelation, position: int) -> str:
        value_columns = relation.value_columns
        if position < 1 or position > len(value_columns):
            raise PRAError(
                f"positional reference ${position} out of range; the relation has "
                f"{len(value_columns)} value columns ({value_columns})"
            )
        return value_columns[position - 1]

    @classmethod
    def _resolve_positions(
        cls, relation: ProbabilisticRelation, positions: tuple[int, ...]
    ) -> list[str]:
        return [cls._resolve_position(relation, position) for position in positions]
