"""Probabilistic Relational Algebra (PRA) with tuple-level uncertainty.

Section 2.3 of the paper closes the gap between structured search (certain
facts) and unstructured search (statistically ranked answers) by appending a
probability column ``p`` to every table and defining, per relational
operator, how probabilities combine.  This package implements that algebra,
following Fuhr & Rölleke (1997) and Roelleke et al. (2008):

* :mod:`repro.pra.relation` — probabilistic relations (a relation whose last
  column is ``p``), and lifting of ordinary relations (``p = 1.0``);
* :mod:`repro.pra.assumptions` — the event-independence assumptions
  (independent, disjoint, subsumed) that parameterise projection, join and
  union;
* :mod:`repro.pra.operators` — the probability-combination kernels;
* :mod:`repro.pra.plan` — logical PRA plan nodes (SELECT, PROJECT, JOIN,
  UNITE, SUBTRACT, BAYES, WEIGHT, scans and literal relations);
* :mod:`repro.pra.evaluator` — evaluation of PRA plans against a
  :class:`~repro.relational.database.Database`.

The SpinQL front-end (:mod:`repro.spinql`) parses the paper's query language
into these plans, and the strategy layer (:mod:`repro.strategy`) compiles
block graphs into them.
"""

from repro.pra.assumptions import Assumption
from repro.pra.evaluator import PRAEvaluator
from repro.pra.optimizer import optimize_pra
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraParam,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraValues,
    PraWeight,
)
from repro.pra.relation import ProbabilisticRelation
from repro.pra.expressions import PositionalRef, positional

__all__ = [
    "Assumption",
    "PRAEvaluator",
    "PositionalRef",
    "PraBayes",
    "PraJoin",
    "PraParam",
    "PraPlan",
    "PraProject",
    "PraScan",
    "PraSelect",
    "PraSubtract",
    "PraTop",
    "PraUnite",
    "PraValues",
    "PraWeight",
    "ProbabilisticRelation",
    "optimize_pra",
    "positional",
]
