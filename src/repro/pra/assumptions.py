"""Event-independence assumptions of the probabilistic relational algebra.

When an operator merges several input tuples into one output tuple (duplicate
elimination in projection, union of overlapping relations), the combined
probability depends on how the underlying events relate:

* ``INDEPENDENT`` — events are independent:
  ``P(a or b) = 1 - (1 - P(a)) * (1 - P(b))``, ``P(a and b) = P(a) * P(b)``;
* ``DISJOINT`` — events are mutually exclusive:
  ``P(a or b) = P(a) + P(b)`` (clamped at 1.0 for numerical safety);
* ``SUBSUMED`` — one event implies the other:
  ``P(a or b) = max(P(a), P(b))``, ``P(a and b) = min(P(a), P(b))``.

The paper's example uses ``JOIN INDEPENDENT``; the strategy layer's *Mix*
block uses a weighted disjoint union.
"""

from __future__ import annotations

import enum

from repro.errors import ProbabilityError


class Assumption(enum.Enum):
    """How the events behind tuples relate when combining probabilities."""

    INDEPENDENT = "independent"
    DISJOINT = "disjoint"
    SUBSUMED = "subsumed"

    @classmethod
    def parse(cls, text: str) -> "Assumption":
        """Parse an assumption keyword (case-insensitive)."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ProbabilityError(
                f"unknown assumption {text!r}; expected one of "
                f"{[assumption.value for assumption in cls]}"
            ) from None

    # -- combination rules -----------------------------------------------------------

    def combine_or(self, left: float, right: float) -> float:
        """Probability that at least one of two events holds."""
        if self is Assumption.INDEPENDENT:
            return 1.0 - (1.0 - left) * (1.0 - right)
        if self is Assumption.DISJOINT:
            return min(left + right, 1.0)
        return max(left, right)

    def combine_and(self, left: float, right: float) -> float:
        """Probability that both of two events hold."""
        if self is Assumption.INDEPENDENT:
            return left * right
        if self is Assumption.DISJOINT:
            # mutually exclusive events cannot co-occur
            return 0.0
        return min(left, right)

    def combine_or_many(self, probabilities: list[float]) -> float:
        """Fold :meth:`combine_or` over a list of probabilities."""
        if not probabilities:
            return 0.0
        result = probabilities[0]
        for probability in probabilities[1:]:
            result = self.combine_or(result, probability)
        return result
