"""A rule-based optimizer for logical PRA plans.

The relational layer already optimizes the physical plans it executes
(:mod:`repro.relational.optimizer`); this module applies the analogous
rewrites one level up, on the probabilistic algebra, before a plan reaches
the evaluator.  Only rewrites that provably preserve the probability
semantics of :mod:`repro.pra.operators` are implemented:

* **selection fusion** — ``SELECT p2 (SELECT p1 (x))`` becomes
  ``SELECT [p1 AND p2] (x)``: selections keep tuple probabilities untouched,
  so conjoining predicates changes nothing;
* **weight folding** — ``WEIGHT a (WEIGHT b (x))`` becomes
  ``WEIGHT a*b (x)`` and ``WEIGHT 1.0 (x)`` disappears: probability scaling
  is associative;
* **selection past weight** — ``SELECT p (WEIGHT f (x))`` becomes
  ``WEIGHT f (SELECT p (x))``: predicates only see value columns, never
  ``p``, so filtering commutes with scaling (and exposes further fusion);
* **selection into union** — ``SELECT p (UNITE (a, b))`` distributes into
  ``UNITE (SELECT p (a), SELECT p (b))``: the union merges tuples with equal
  value columns, and equal tuples agree on any value-column predicate.

Rewrites that evaluate a predicate over rows the original plan filtered out
(fusion, distribution into union) only fire for *total* predicates —
comparisons, boolean connectives, references, literals.  Predicates
containing scalar UDF calls may raise value-dependently and are left where
the query author put them.

Rules are applied bottom-up to a fixpoint, mirroring the relational
optimizer's driver loop.
"""

from __future__ import annotations

from repro.pra.expressions import PositionalRef
from repro.pra.plan import (
    PraJoin,
    PraPlan,
    PraSelect,
    PraSubtract,
    PraUnite,
    PraWeight,
)
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
    UnaryOp,
)


def optimize_pra(plan: PraPlan) -> PraPlan:
    """Apply all rewrite rules bottom-up until the plan stops changing."""
    previous_fingerprint = None
    current = plan
    while current.fingerprint() != previous_fingerprint:
        previous_fingerprint = current.fingerprint()
        current = _rewrite(current)
    return current


def _rewrite(plan: PraPlan) -> PraPlan:
    plan = _rewrite_children(plan)
    plan = _fold_weights(plan)
    plan = _push_select_past_weight(plan)
    plan = _push_select_into_unite(plan)
    plan = _fuse_selections(plan)
    return plan


def _rewrite_children(plan: PraPlan) -> PraPlan:
    """Rebuild ``plan`` with rewritten children (PRA nodes are immutable)."""
    if isinstance(plan, PraSelect):
        return PraSelect(_rewrite(plan.child), plan.predicate)
    if isinstance(plan, PraWeight):
        return PraWeight(_rewrite(plan.child), plan.factor)
    if isinstance(plan, PraUnite):
        return PraUnite(_rewrite(plan.left), _rewrite(plan.right), plan.assumption)
    if isinstance(plan, PraSubtract):
        return PraSubtract(_rewrite(plan.left), _rewrite(plan.right))
    if isinstance(plan, PraJoin):
        return PraJoin(
            _rewrite(plan.left), _rewrite(plan.right), plan.conditions, plan.assumption
        )
    # PraProject / PraBayes keep positional references that are only valid
    # against their direct child's column layout, so their subtree is rewritten
    # but the node itself is never reordered.
    from repro.pra.plan import PraBayes, PraProject

    if isinstance(plan, PraProject):
        return PraProject(
            _rewrite(plan.child), plan.positions, plan.assumption, plan.output_names
        )
    if isinstance(plan, PraBayes):
        return PraBayes(_rewrite(plan.child), plan.evidence_positions)
    return plan


def _is_simple_predicate(expression: Expression) -> bool:
    """True if evaluating ``expression`` on extra rows cannot raise.

    Comparisons, boolean connectives, column/positional references and
    literals are total over whatever rows they see; anything else (notably
    scalar UDF calls, which may raise value-dependently) makes a rewrite that
    evaluates the predicate over rows the original plan filtered out unsafe.
    """
    if isinstance(expression, (Literal, ColumnRef, PositionalRef)):
        return True
    if isinstance(expression, BinaryOp):
        return _is_simple_predicate(expression.left) and _is_simple_predicate(
            expression.right
        )
    if isinstance(expression, UnaryOp):
        return _is_simple_predicate(expression.operand)
    return False


def _fuse_selections(plan: PraPlan) -> PraPlan:
    if isinstance(plan, PraSelect) and isinstance(plan.child, PraSelect):
        # fusing evaluates the outer predicate over rows the inner one would
        # have removed, so both must be total
        if not (
            _is_simple_predicate(plan.predicate)
            and _is_simple_predicate(plan.child.predicate)
        ):
            return plan
        inner = plan.child
        combined = BinaryOp("and", inner.predicate, plan.predicate)
        return PraSelect(inner.child, combined)
    return plan


def _fold_weights(plan: PraPlan) -> PraPlan:
    if isinstance(plan, PraWeight) and isinstance(plan.child, PraWeight):
        inner = plan.child
        return PraWeight(inner.child, plan.factor * inner.factor)
    if isinstance(plan, PraWeight) and plan.factor == 1.0:
        return plan.child
    return plan


def _push_select_past_weight(plan: PraPlan) -> PraPlan:
    if isinstance(plan, PraSelect) and isinstance(plan.child, PraWeight):
        weight = plan.child
        return PraWeight(PraSelect(weight.child, plan.predicate), weight.factor)
    return plan


def _push_select_into_unite(plan: PraPlan) -> PraPlan:
    if isinstance(plan, PraSelect) and isinstance(plan.child, PraUnite):
        # the union merges duplicate tuples, so distributing evaluates the
        # predicate over the (larger) pre-merge row sets — it must be total
        if not _is_simple_predicate(plan.predicate):
            return plan
        unite = plan.child
        return PraUnite(
            PraSelect(unite.left, plan.predicate),
            PraSelect(unite.right, plan.predicate),
            unite.assumption,
        )
    return plan
