"""A rule-based optimizer for logical PRA plans.

The relational layer already optimizes the physical plans it executes
(:mod:`repro.relational.optimizer`); this module applies the analogous
rewrites one level up, on the probabilistic algebra, before a plan reaches
the evaluator.  Only rewrites that provably preserve the probability
semantics of :mod:`repro.pra.operators` are implemented:

* **selection fusion** — ``SELECT p2 (SELECT p1 (x))`` becomes
  ``SELECT [p1 AND p2] (x)``: selections keep tuple probabilities untouched,
  so conjoining predicates changes nothing;
* **weight folding** — ``WEIGHT a (WEIGHT b (x))`` becomes
  ``WEIGHT a*b (x)`` and ``WEIGHT 1.0 (x)`` disappears: probability scaling
  is associative;
* **selection past weight** — ``SELECT p (WEIGHT f (x))`` becomes
  ``WEIGHT f (SELECT p (x))``: predicates only see value columns, never
  ``p``, so filtering commutes with scaling (and exposes further fusion);
* **selection into union** — ``SELECT p (UNITE (a, b))`` distributes into
  ``UNITE (SELECT p (a), SELECT p (b))``: the union merges tuples with equal
  value columns, and equal tuples agree on any value-column predicate.

Rewrites that evaluate a predicate over rows the original plan filtered out
(fusion, distribution into union) only fire for *total* predicates —
comparisons, boolean connectives, references, literals.  Predicates
containing scalar UDF calls may raise value-dependently and are left where
the query author put them.

Rank-aware rewrites push :class:`~repro.pra.plan.PraTop` towards the leaves
so ``top(k)`` never has to materialise and fully sort large intermediates:

* **top absorption** — ``TOP k1 (TOP k2 (x))`` becomes ``TOP min(k1,k2) (x)``;
* **top past weight** — ``TOP k (WEIGHT f (x))`` becomes
  ``WEIGHT f (TOP k (x))`` for ``f > 0``: scaling by a strictly positive
  constant preserves the (probability, value-key) order exactly, ties
  included.  ``f = 0`` collapses every probability to zero, so the original
  plan's top-k (chosen *before* scaling) differs from the pushed one — the
  rule does not fire;
* **top into union** — ``TOP k (UNITE SUBSUMED (a, b))`` prunes both sides to
  ``TOP k`` first.  This is sound only under the SUBSUMED (max) merge, and
  only when both sides are provably duplicate-free (their root merges
  duplicates: a projection, a union, …).  Under INDEPENDENT or DISJOINT
  merges the combined probability exceeds either input, so a tuple ranked
  below k on *both* sides can still reach the global top-k (e.g. ``k=1``,
  ``a = {u:0.6, t:0.5}``, ``b = {v:0.6, t:0.5}`` — the independent union
  ranks ``t`` first at ``0.75``); with duplicate rows inside one side, k rows
  of one high-probability tuple can crowd every other group out of the
  pruned side.  Both cases provably stop the pushdown.

``TOP`` never crosses BAYES (normalisation depends on whole-group totals),
SUBTRACT (the right side rescales left probabilities non-uniformly), SELECT
(the filter must see its rows before any pruning), PROJECT (duplicate
merging can lift a low-ranked tuple above pruned ones) or JOIN (match
probabilities combine across sides).

Rules are applied bottom-up to a fixpoint, mirroring the relational
optimizer's driver loop.

**Cost-model steering.**  ``optimize_pra`` accepts an optional ``top_gate``
— a predicate over the subtree a ``TOP`` would be pushed towards.  When the
gate answers ``False`` (e.g. the engine's calibrated cost model estimates
the child is already tiny, so pruning buys nothing) the TOP-pushdown
rewrites are skipped for that node.  Both outcomes are result-identical by
the soundness arguments above: the gate steers *where work happens*, never
*what is computed* — the plan-equivalence property suite enforces this.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.pra.assumptions import Assumption
from repro.pra.expressions import PositionalRef
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraPlan,
    PraProject,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraWeight,
)
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
    UnaryOp,
)


#: a predicate over the subtree a TOP would be pushed towards; False skips
#: the (result-identical) pushdown for that node
TopGate = Callable[[PraPlan], bool]


def optimize_pra(plan: PraPlan, *, top_gate: TopGate | None = None) -> PraPlan:
    """Apply all rewrite rules bottom-up until the plan stops changing."""
    previous_fingerprint = None
    current = plan
    while current.fingerprint() != previous_fingerprint:
        previous_fingerprint = current.fingerprint()
        current = _rewrite(current, top_gate)
    return current


def _rewrite(plan: PraPlan, gate: TopGate | None) -> PraPlan:
    plan = _rewrite_children(plan, gate)
    plan = _fold_weights(plan)
    plan = _push_select_past_weight(plan)
    plan = _push_select_into_unite(plan)
    plan = _fuse_selections(plan)
    plan = _absorb_tops(plan)
    plan = _push_top_past_weight(plan, gate)
    plan = _push_top_into_unite(plan, gate)
    return plan


def _rewrite_children(plan: PraPlan, gate: TopGate | None) -> PraPlan:
    """Rebuild ``plan`` with rewritten children (PRA nodes are immutable)."""
    if isinstance(plan, PraSelect):
        return PraSelect(_rewrite(plan.child, gate), plan.predicate)
    if isinstance(plan, PraWeight):
        return PraWeight(_rewrite(plan.child, gate), plan.factor)
    if isinstance(plan, PraTop):
        return PraTop(_rewrite(plan.child, gate), plan.k)
    if isinstance(plan, PraUnite):
        return PraUnite(
            _rewrite(plan.left, gate), _rewrite(plan.right, gate), plan.assumption
        )
    if isinstance(plan, PraSubtract):
        return PraSubtract(_rewrite(plan.left, gate), _rewrite(plan.right, gate))
    if isinstance(plan, PraJoin):
        return PraJoin(
            _rewrite(plan.left, gate),
            _rewrite(plan.right, gate),
            plan.conditions,
            plan.assumption,
        )
    # PraProject / PraBayes keep positional references that are only valid
    # against their direct child's column layout, so their subtree is rewritten
    # but the node itself is never reordered.
    if isinstance(plan, PraProject):
        return PraProject(
            _rewrite(plan.child, gate), plan.positions, plan.assumption, plan.output_names
        )
    if isinstance(plan, PraBayes):
        return PraBayes(_rewrite(plan.child, gate), plan.evidence_positions)
    return plan


def _is_simple_predicate(expression: Expression) -> bool:
    """True if evaluating ``expression`` on extra rows cannot raise.

    Comparisons, boolean connectives, column/positional references and
    literals are total over whatever rows they see; anything else (notably
    scalar UDF calls, which may raise value-dependently) makes a rewrite that
    evaluates the predicate over rows the original plan filtered out unsafe.
    """
    if isinstance(expression, (Literal, ColumnRef, PositionalRef)):
        return True
    if isinstance(expression, BinaryOp):
        return _is_simple_predicate(expression.left) and _is_simple_predicate(
            expression.right
        )
    if isinstance(expression, UnaryOp):
        return _is_simple_predicate(expression.operand)
    return False


def _fuse_selections(plan: PraPlan) -> PraPlan:
    if isinstance(plan, PraSelect) and isinstance(plan.child, PraSelect):
        # fusing evaluates the outer predicate over rows the inner one would
        # have removed, so both must be total
        if not (
            _is_simple_predicate(plan.predicate)
            and _is_simple_predicate(plan.child.predicate)
        ):
            return plan
        inner = plan.child
        combined = BinaryOp("and", inner.predicate, plan.predicate)
        return PraSelect(inner.child, combined)
    return plan


def _fold_weights(plan: PraPlan) -> PraPlan:
    if isinstance(plan, PraWeight) and isinstance(plan.child, PraWeight):
        inner = plan.child
        return PraWeight(inner.child, plan.factor * inner.factor)
    if isinstance(plan, PraWeight) and plan.factor == 1.0:
        return plan.child
    return plan


def _push_select_past_weight(plan: PraPlan) -> PraPlan:
    if isinstance(plan, PraSelect) and isinstance(plan.child, PraWeight):
        weight = plan.child
        return PraWeight(PraSelect(weight.child, plan.predicate), weight.factor)
    return plan


def _push_select_into_unite(plan: PraPlan) -> PraPlan:
    if isinstance(plan, PraSelect) and isinstance(plan.child, PraUnite):
        # the union merges duplicate tuples, so distributing evaluates the
        # predicate over the (larger) pre-merge row sets — it must be total
        if not _is_simple_predicate(plan.predicate):
            return plan
        unite = plan.child
        return PraUnite(
            PraSelect(unite.left, plan.predicate),
            PraSelect(unite.right, plan.predicate),
            unite.assumption,
        )
    return plan


# ---------------------------------------------------------------------------
# Rank-aware rewrites: TOP pushdown
# ---------------------------------------------------------------------------


def _absorb_tops(plan: PraPlan) -> PraPlan:
    if isinstance(plan, PraTop) and isinstance(plan.child, PraTop):
        inner = plan.child
        return PraTop(inner.child, min(plan.k, inner.k))
    return plan


def _push_top_past_weight(plan: PraPlan, gate: TopGate | None = None) -> PraPlan:
    # scaling by f > 0 is strictly monotone and leaves values untouched, so
    # the (probability, value-key) order — ties included — is preserved
    # exactly; f = 0 maps every probability to zero and would change which
    # tuples the top-k keeps
    if isinstance(plan, PraTop) and isinstance(plan.child, PraWeight):
        weight = plan.child
        if weight.factor > 0 and (gate is None or gate(weight.child)):
            return PraWeight(PraTop(weight.child, plan.k), weight.factor)
    return plan


def _produces_distinct(plan: PraPlan) -> bool:
    """True if ``plan`` provably never emits two rows with equal value columns.

    The duplicate-freeness lattice is shared with the static verifier; the
    single implementation lives in :mod:`repro.analysis.lattice` so the
    optimizer's prune rule and the verifier's assumption diagnostics can
    never drift apart.
    """
    from repro.analysis.lattice import produces_distinct

    return produces_distinct(plan)


def _already_pruned(side: PraPlan, k: int) -> bool:
    """True if ``side`` already limits itself to at most ``k`` rows.

    The top-past-weight rule moves an inserted TOP below the side's weights,
    so look through the weight chain — otherwise the unite rule would re-wrap
    the side every pass and oscillate instead of reaching a fixpoint.
    """
    node = side
    while isinstance(node, PraWeight):
        node = node.child
    return isinstance(node, PraTop) and node.k <= k


def _push_top_into_unite(plan: PraPlan, gate: TopGate | None = None) -> PraPlan:
    # sound only under the SUBSUMED (max) merge — the merged probability is
    # then attained by one of the inputs — and only for duplicate-free sides;
    # see the module docstring for the counterexamples that stop the rewrite
    # under INDEPENDENT/DISJOINT merges or multiset sides
    if not (isinstance(plan, PraTop) and isinstance(plan.child, PraUnite)):
        return plan
    unite = plan.child
    if unite.assumption is not Assumption.SUBSUMED:
        return plan
    if not (_produces_distinct(unite.left) and _produces_distinct(unite.right)):
        return plan

    def prune(side: PraPlan) -> PraPlan:
        if _already_pruned(side, plan.k):
            return side
        if gate is not None and not gate(side):
            return side
        return PraTop(side, plan.k)

    left, right = prune(unite.left), prune(unite.right)
    if left is unite.left and right is unite.right:
        return plan
    return PraTop(PraUnite(left, right, unite.assumption), plan.k)
