"""Logical PRA plan nodes.

A PRA plan is the intermediate representation between the SpinQL front-end /
strategy compiler and the evaluator.  Nodes mirror the operators of
:mod:`repro.pra.operators`; every node can describe itself (for plan
inspection in tests and examples) and produce a deterministic fingerprint
(so PRA results can participate in the on-demand materialization cache).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import PRAError
from repro.pra.assumptions import Assumption
from repro.pra.relation import ProbabilisticRelation
from repro.relational.expressions import Expression


class PraPlan:
    """Base class for PRA plan nodes."""

    def children(self) -> list["PraPlan"]:
        return []

    def describe(self, indent: int = 0) -> str:
        """Return an indented, human-readable plan description."""
        lines = ["  " * indent + self._describe_self()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _describe_self(self) -> str:
        return type(self).__name__

    def fingerprint(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class PraScan(PraPlan):
    """Scan a named table or view; tuples without a ``p`` column get ``p = 1``."""

    table: str

    def fingerprint(self) -> str:
        return f"prascan({self.table})"

    def _describe_self(self) -> str:
        return f"Scan({self.table})"


class PraValues(PraPlan):
    """A literal probabilistic relation embedded in the plan."""

    def __init__(self, relation: ProbabilisticRelation, label: str = "values"):
        self.relation = relation
        self.label = label

    def fingerprint(self) -> str:
        rows = ";".join(",".join(map(repr, row)) for row in self.relation.rows())
        return f"pravalues({self.label}:{hash(rows)})"

    def _describe_self(self) -> str:
        return f"Values({self.label}, rows={self.relation.num_rows})"


@dataclass(frozen=True)
class PraParam(PraPlan):
    """A named placeholder for a probabilistic relation bound at execution time.

    Parameters make compiled plans reusable: the fingerprint depends only on
    the parameter *name*, never on the bound value, so a parameterized query
    compiled once can be executed many times against different bindings while
    hitting the engine's plan cache.
    """

    name: str

    def fingerprint(self) -> str:
        return f"praparam({self.name})"

    def _describe_self(self) -> str:
        return f"Param({self.name})"


class PraSelect(PraPlan):
    """``SELECT [predicate] (input)``."""

    def __init__(self, child: PraPlan, predicate: Expression):
        self.child = child
        self.predicate = predicate

    def children(self) -> list[PraPlan]:
        return [self.child]

    def fingerprint(self) -> str:
        return f"praselect({self.predicate.to_sql()})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        return f"SELECT [{self.predicate.to_sql()}]"


class PraProject(PraPlan):
    """``PROJECT [columns] (input)`` with duplicate merging under an assumption."""

    def __init__(
        self,
        child: PraPlan,
        positions: Sequence[int],
        assumption: Assumption = Assumption.INDEPENDENT,
        output_names: Sequence[str] | None = None,
    ):
        if not positions:
            raise PRAError("projection requires at least one column position")
        self.child = child
        self.positions = tuple(positions)
        self.assumption = assumption
        self.output_names = tuple(output_names) if output_names is not None else None

    def children(self) -> list[PraPlan]:
        return [self.child]

    def fingerprint(self) -> str:
        rendered = ",".join(str(position) for position in self.positions)
        return (
            f"praproject({rendered};{self.assumption.value};{self.output_names})"
            f"[{self.child.fingerprint()}]"
        )

    def _describe_self(self) -> str:
        rendered = ", ".join(f"${position}" for position in self.positions)
        return f"PROJECT {self.assumption.value.upper()} [{rendered}]"


class PraJoin(PraPlan):
    """``JOIN <assumption> [$i=$j, ...] (left, right)``."""

    def __init__(
        self,
        left: PraPlan,
        right: PraPlan,
        conditions: Sequence[tuple[int, int]],
        assumption: Assumption = Assumption.INDEPENDENT,
    ):
        if not conditions:
            raise PRAError("join requires at least one positional condition")
        self.left = left
        self.right = right
        self.conditions = tuple(conditions)
        self.assumption = assumption

    def children(self) -> list[PraPlan]:
        return [self.left, self.right]

    def fingerprint(self) -> str:
        conditions = ",".join(f"{left}={right}" for left, right in self.conditions)
        return (
            f"prajoin({conditions};{self.assumption.value})"
            f"[{self.left.fingerprint()}|{self.right.fingerprint()}]"
        )

    def _describe_self(self) -> str:
        conditions = ", ".join(f"${left}=${right}" for left, right in self.conditions)
        return f"JOIN {self.assumption.value.upper()} [{conditions}]"


class PraUnite(PraPlan):
    """``UNITE <assumption> (left, right)``."""

    def __init__(
        self,
        left: PraPlan,
        right: PraPlan,
        assumption: Assumption = Assumption.INDEPENDENT,
    ):
        self.left = left
        self.right = right
        self.assumption = assumption

    def children(self) -> list[PraPlan]:
        return [self.left, self.right]

    def fingerprint(self) -> str:
        return (
            f"praunite({self.assumption.value})"
            f"[{self.left.fingerprint()}|{self.right.fingerprint()}]"
        )

    def _describe_self(self) -> str:
        return f"UNITE {self.assumption.value.upper()}"


class PraSubtract(PraPlan):
    """``SUBTRACT (left, right)``: left tuples weighted by the complement of right."""

    def __init__(self, left: PraPlan, right: PraPlan):
        self.left = left
        self.right = right

    def children(self) -> list[PraPlan]:
        return [self.left, self.right]

    def fingerprint(self) -> str:
        return f"prasubtract[{self.left.fingerprint()}|{self.right.fingerprint()}]"

    def _describe_self(self) -> str:
        return "SUBTRACT"


class PraBayes(PraPlan):
    """``BAYES [evidence positions] (input)``: normalise within evidence groups."""

    def __init__(self, child: PraPlan, evidence_positions: Sequence[int] = ()):
        self.child = child
        self.evidence_positions = tuple(evidence_positions)

    def children(self) -> list[PraPlan]:
        return [self.child]

    def fingerprint(self) -> str:
        rendered = ",".join(str(position) for position in self.evidence_positions)
        return f"prabayes({rendered})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        rendered = ", ".join(f"${position}" for position in self.evidence_positions)
        return f"BAYES [{rendered}]"


class PraWeight(PraPlan):
    """``WEIGHT [factor] (input)``: scale probabilities by a constant factor."""

    def __init__(self, child: PraPlan, factor: float):
        self.child = child
        self.factor = factor

    def children(self) -> list[PraPlan]:
        return [self.child]

    def fingerprint(self) -> str:
        return f"praweight({self.factor})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        return f"WEIGHT [{self.factor}]"


class PraTop(PraPlan):
    """``TOP [k] (input)``: the ``k`` most probable tuples, deterministically ordered.

    The output is ordered by probability descending with ties broken by the
    value columns ascending, so ``TOP [k]`` is exactly equivalent to a full
    deterministic sort followed by a ``k``-row slice — which is what the
    property-based equivalence suite asserts.  The evaluator uses a
    partial-sort kernel (``np.argpartition``) instead of materialising that
    full sort, and the optimizer pushes the node towards the leaves wherever
    probability monotonicity allows.
    """

    def __init__(self, child: PraPlan, k: int):
        if k < 0:
            raise PRAError(f"TOP requires a non-negative k, got {k}")
        self.child = child
        self.k = int(k)

    def children(self) -> list[PraPlan]:
        return [self.child]

    def fingerprint(self) -> str:
        return f"pratop({self.k})[{self.child.fingerprint()}]"

    def _describe_self(self) -> str:
        return f"TOP [{self.k}]"
