"""Probability-combination kernels for the PRA operators.

Each function takes probabilistic relations and returns a probabilistic
relation, implementing the semantics described in Section 2.3 of the paper
and in Fuhr & Rölleke (1997):

* selection keeps tuple probabilities unchanged;
* projection merges duplicate value-tuples under an assumption;
* join multiplies probabilities of matching tuples (independent events);
* union merges tuples occurring in either input under an assumption;
* subtraction keeps left tuples weighted by the complement of the right;
* the relational Bayes operator normalises probabilities within evidence
  groups (Roelleke et al., 2008), turning frequencies into conditional
  probabilities;
* weighting scales probabilities by a constant (the *Mix* block's weights).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.errors import PRAError, ProbabilityError
from repro.pra.assumptions import Assumption
from repro.pra.relation import PROBABILITY_COLUMN, ProbabilisticRelation
from repro.relational.column import Column, DataType
from repro.relational.expressions import Expression
from repro.relational.functions import FunctionRegistry
from repro.relational.operators import group_codes, group_segments, hash_join_indices
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def select(
    input_relation: ProbabilisticRelation,
    predicate: Expression,
    functions: FunctionRegistry,
) -> ProbabilisticRelation:
    """Probabilistic selection: filter rows, probabilities unchanged."""
    relation = input_relation.relation
    if relation.num_rows == 0:
        return input_relation
    mask = predicate.evaluate(relation, functions)
    if mask.dtype is not DataType.BOOL:
        raise PRAError("selection predicate must evaluate to a boolean column")
    return ProbabilisticRelation(relation.filter(mask.values), validate=False)


def project(
    input_relation: ProbabilisticRelation,
    columns: Sequence[str],
    assumption: Assumption = Assumption.INDEPENDENT,
    *,
    output_names: Sequence[str] | None = None,
) -> ProbabilisticRelation:
    """Probabilistic projection with duplicate merging.

    Duplicate value-tuples produced by the projection are merged into a single
    output tuple whose probability is the disjunction of the duplicates'
    probabilities under ``assumption``.
    """
    for name in columns:
        if name == PROBABILITY_COLUMN:
            raise PRAError("the probability column cannot be projected explicitly")
    relation = input_relation.relation
    projected = relation.select_columns(list(columns))
    if output_names is not None:
        if len(output_names) != len(columns):
            raise PRAError("output_names must match the projected columns")
        projected = projected.rename(dict(zip(columns, output_names)))
    probabilities = input_relation.probabilities()

    try:
        codes, representatives = group_codes(projected, projected.schema.names)
    except TypeError:
        return _project_merge_rows(projected, probabilities, assumption)
    num_groups = len(representatives)
    if num_groups and projected.num_rows:
        order, starts = group_segments(codes, num_groups)
        sorted_probabilities = probabilities[order]
        if assumption is Assumption.INDEPENDENT:
            merged = 1.0 - np.multiply.reduceat(1.0 - sorted_probabilities, starts)
        elif assumption is Assumption.DISJOINT:
            merged = np.minimum(np.add.reduceat(sorted_probabilities, starts), 1.0)
        else:
            merged = np.maximum.reduceat(sorted_probabilities, starts)
    else:
        merged = np.empty(0, dtype=np.float64)

    values = projected.take(representatives)
    column = Column(merged.astype(np.float64), DataType.FLOAT)
    return ProbabilisticRelation(
        values.with_column(PROBABILITY_COLUMN, column), validate=False
    )


def _project_merge_rows(
    projected: Relation,
    probabilities: np.ndarray,
    assumption: Assumption,
) -> ProbabilisticRelation:
    """Row-at-a-time duplicate merge: fallback for non-orderable values."""
    merged: "OrderedDict[tuple[Any, ...], float]" = OrderedDict()
    for index, row in enumerate(projected.rows()):
        probability = float(probabilities[index])
        if row in merged:
            merged[row] = assumption.combine_or(merged[row], probability)
        else:
            merged[row] = probability

    fields = list(projected.schema.fields) + [Field(PROBABILITY_COLUMN, DataType.FLOAT)]
    rows = [tuple(row) + (probability,) for row, probability in merged.items()]
    return ProbabilisticRelation(Relation.from_rows(Schema(fields), rows), validate=False)


def join(
    left: ProbabilisticRelation,
    right: ProbabilisticRelation,
    conditions: Sequence[tuple[str, str]],
    assumption: Assumption = Assumption.INDEPENDENT,
) -> ProbabilisticRelation:
    """Probabilistic equi-join: matching tuples conjoin their probabilities.

    Under the (default) independence assumption the output probability is the
    product ``p_left * p_right`` — exactly the ``t1.p * t2.p`` of the SQL the
    paper's SpinQL example translates to.
    """
    left_relation = left.values_relation()
    right_relation = right.values_relation()
    left_indices, right_indices = hash_join_indices(
        left_relation,
        right_relation,
        [pair[0] for pair in conditions],
        [pair[1] for pair in conditions],
    )
    combined_schema = left_relation.schema.concat(right_relation.schema)
    left_rows = left_relation.take(left_indices)
    right_rows = right_relation.take(right_indices)
    columns = list(left_rows.columns().values()) + list(right_rows.columns().values())
    values = Relation(combined_schema, columns)

    left_probabilities = left.probabilities()[left_indices]
    right_probabilities = right.probabilities()[right_indices]
    if assumption is Assumption.INDEPENDENT:
        probabilities = left_probabilities * right_probabilities
    elif assumption is Assumption.SUBSUMED:
        probabilities = np.minimum(left_probabilities, right_probabilities)
    else:
        raise PRAError("a disjoint join always yields probability zero; not supported")

    column = Column(probabilities.astype(np.float64), DataType.FLOAT)
    return ProbabilisticRelation(values.with_column(PROBABILITY_COLUMN, column), validate=False)


def unite(
    left: ProbabilisticRelation,
    right: ProbabilisticRelation,
    assumption: Assumption = Assumption.INDEPENDENT,
) -> ProbabilisticRelation:
    """Probabilistic union: tuples present in either input, probabilities disjoined."""
    left_values = left.value_rows()
    right_values = right.value_rows()
    if left.value_columns != right.value_columns:
        if len(left.value_columns) != len(right.value_columns):
            raise PRAError(
                "union requires inputs with the same number of value columns, got "
                f"{left.value_columns} and {right.value_columns}"
            )
    left_probabilities = left.probabilities()
    right_probabilities = right.probabilities()

    merged: "OrderedDict[tuple[Any, ...], float]" = OrderedDict()
    for row, probability in zip(left_values, left_probabilities):
        if row in merged:
            merged[row] = assumption.combine_or(merged[row], float(probability))
        else:
            merged[row] = float(probability)
    for row, probability in zip(right_values, right_probabilities):
        if row in merged:
            merged[row] = assumption.combine_or(merged[row], float(probability))
        else:
            merged[row] = float(probability)

    fields = list(left.values_relation().schema.fields) + [
        Field(PROBABILITY_COLUMN, DataType.FLOAT)
    ]
    rows = [tuple(row) + (probability,) for row, probability in merged.items()]
    return ProbabilisticRelation(Relation.from_rows(Schema(fields), rows), validate=False)


def subtract(
    left: ProbabilisticRelation,
    right: ProbabilisticRelation,
) -> ProbabilisticRelation:
    """Probabilistic difference: ``P(left and not right)`` per value-tuple."""
    if len(left.value_columns) != len(right.value_columns):
        raise PRAError("subtraction requires inputs with the same number of value columns")
    right_probability: dict[tuple[Any, ...], float] = {}
    for row, probability in zip(right.value_rows(), right.probabilities()):
        existing = right_probability.get(row, 0.0)
        right_probability[row] = Assumption.INDEPENDENT.combine_or(existing, float(probability))

    probabilities = left.probabilities().copy()
    for index, row in enumerate(left.value_rows()):
        if row in right_probability:
            probabilities[index] *= 1.0 - right_probability[row]
    return left.with_probabilities(probabilities)


def bayes(
    input_relation: ProbabilisticRelation,
    evidence_columns: Sequence[str],
) -> ProbabilisticRelation:
    """The relational Bayes operator: normalise probabilities within evidence groups.

    For each group of tuples sharing the same values of ``evidence_columns``,
    probabilities are divided by the group total, yielding conditional
    probabilities ``P(tuple | evidence)``.  With an empty ``evidence_columns``
    the whole relation forms one group (global normalisation).
    """
    probabilities = input_relation.probabilities()
    if input_relation.num_rows == 0:
        return input_relation
    try:
        codes, representatives = group_codes(
            input_relation.relation, list(evidence_columns)
        )
    except TypeError:
        return _bayes_rows(input_relation, evidence_columns, probabilities)
    num_groups = max(len(representatives), 1)
    totals = np.bincount(codes, weights=probabilities, minlength=num_groups)
    row_totals = totals[codes]
    normalised = np.divide(
        probabilities,
        row_totals,
        out=np.zeros(len(probabilities), dtype=np.float64),
        where=row_totals > 0,
    )
    return input_relation.with_probabilities(normalised)


def _bayes_rows(
    input_relation: ProbabilisticRelation,
    evidence_columns: Sequence[str],
    probabilities: np.ndarray,
) -> ProbabilisticRelation:
    """Row-at-a-time evidence grouping: fallback for non-orderable values."""
    if evidence_columns:
        values = input_relation.relation.select_columns(list(evidence_columns))
        keys = list(values.rows())
    else:
        keys = [()] * input_relation.num_rows
    totals: dict[tuple[Any, ...], float] = {}
    for key, probability in zip(keys, probabilities):
        totals[key] = totals.get(key, 0.0) + float(probability)
    normalised = np.empty(len(probabilities), dtype=np.float64)
    for index, (key, probability) in enumerate(zip(keys, probabilities)):
        total = totals[key]
        normalised[index] = float(probability) / total if total > 0 else 0.0
    return input_relation.with_probabilities(normalised)


def weight(input_relation: ProbabilisticRelation, factor: float) -> ProbabilisticRelation:
    """Scale every tuple probability by ``factor`` (the Mix block's weights)."""
    if factor < 0 or factor > 1:
        raise ProbabilityError(
            f"weight factor must lie in [0, 1] to keep probabilities valid, got {factor}"
        )
    return input_relation.scaled(factor)


def top(input_relation: ProbabilisticRelation, k: int) -> ProbabilisticRelation:
    """Rank-aware top-k: the ``k`` most probable tuples, deterministically ordered.

    Exactly equivalent to a full deterministic sort (probability descending,
    ties broken by value columns ascending) followed by a ``k``-row slice,
    but evaluated with the partial-sort kernel of
    :meth:`~repro.pra.relation.ProbabilisticRelation.top`.
    """
    if k < 0:
        raise PRAError(f"top-k requires a non-negative k, got {k}")
    return input_relation.top(k)
