"""Probabilistic relations: ordinary relations whose last column is ``p``.

*"A probability column ``p`` is appended to all tables, including triples, in
our RDBMS"* (Section 2.3).  A :class:`ProbabilisticRelation` wraps a plain
:class:`~repro.relational.relation.Relation`, enforcing that the final column
is a float column named ``p`` holding values in ``[0, 1]``.  Ordinary
relations are lifted by appending ``p = 1.0`` ("unaltered probabilities from
initial data", as the paper puts it for the first strategy steps).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.errors import ProbabilityError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

PROBABILITY_COLUMN = "p"


class ProbabilisticRelation:
    """A relation with tuple-level probabilities in its trailing ``p`` column."""

    __slots__ = ("_relation",)

    def __init__(self, relation: Relation, *, validate: bool = True):
        names = relation.schema.names
        if not names or names[-1] != PROBABILITY_COLUMN:
            raise ProbabilityError(
                f"probabilistic relation must end with a {PROBABILITY_COLUMN!r} column, "
                f"got columns {names}"
            )
        if relation.schema.dtype_of(PROBABILITY_COLUMN) is not DataType.FLOAT:
            raise ProbabilityError("the probability column must be a FLOAT column")
        if validate and relation.num_rows > 0:
            probabilities = relation.column(PROBABILITY_COLUMN).values
            if np.any(probabilities < -1e-12) or np.any(probabilities > 1.0 + 1e-12):
                raise ProbabilityError("probabilities must lie in [0, 1]")
        self._relation = relation

    # -- construction ------------------------------------------------------------------

    @classmethod
    def lift(cls, relation: Relation, probability: float = 1.0) -> "ProbabilisticRelation":
        """Lift an ordinary relation by appending a constant probability column."""
        if not 0.0 <= probability <= 1.0:
            raise ProbabilityError(f"probability {probability} outside [0, 1]")
        if PROBABILITY_COLUMN in relation.schema:
            return cls(relation)
        column = Column(
            np.full(relation.num_rows, probability, dtype=np.float64), DataType.FLOAT
        )
        return cls(relation.with_column(PROBABILITY_COLUMN, column))

    @classmethod
    def from_rows(
        cls, names: Sequence[str], dtypes: Sequence[DataType], rows: Sequence[Sequence[Any]]
    ) -> "ProbabilisticRelation":
        """Build a probabilistic relation from rows whose last value is the probability."""
        fields = [Field(name, dtype) for name, dtype in zip(names, dtypes)]
        fields.append(Field(PROBABILITY_COLUMN, DataType.FLOAT))
        schema = Schema(fields)
        return cls(Relation.from_rows(schema, rows))

    # -- accessors ----------------------------------------------------------------------

    @property
    def relation(self) -> Relation:
        """The underlying plain relation (including the ``p`` column)."""
        return self._relation

    @property
    def schema(self) -> Schema:
        return self._relation.schema

    @property
    def num_rows(self) -> int:
        return self._relation.num_rows

    @property
    def value_columns(self) -> list[str]:
        """The ordinary (non-probability) column names, in order."""
        return [name for name in self._relation.schema.names if name != PROBABILITY_COLUMN]

    def probabilities(self) -> np.ndarray:
        """The probability column as a float array."""
        return self._relation.column(PROBABILITY_COLUMN).values.astype(np.float64)

    def values_relation(self) -> Relation:
        """The relation without its probability column."""
        return self._relation.select_columns(self.value_columns)

    def rows(self):
        """Iterate over rows (value columns followed by the probability)."""
        return self._relation.rows()

    def value_rows(self) -> list[tuple[Any, ...]]:
        """Return the rows of the value columns only."""
        return list(self.values_relation().rows())

    def to_dicts(self) -> list[dict[str, Any]]:
        return self._relation.to_dicts()

    def __len__(self) -> int:
        return self.num_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbabilisticRelation):
            return NotImplemented
        return self._relation == other._relation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbabilisticRelation({self.schema!r}, rows={self.num_rows})"

    # -- manipulation -------------------------------------------------------------------

    def with_probabilities(self, probabilities: np.ndarray) -> "ProbabilisticRelation":
        """Return a copy with the probability column replaced."""
        column = Column(np.asarray(probabilities, dtype=np.float64), DataType.FLOAT)
        return ProbabilisticRelation(self._relation.with_column(PROBABILITY_COLUMN, column))

    def scaled(self, factor: float) -> "ProbabilisticRelation":
        """Multiply every probability by ``factor`` (clamped to [0, 1])."""
        if factor < 0:
            raise ProbabilityError("scale factor must be non-negative")
        return self.with_probabilities(np.clip(self.probabilities() * factor, 0.0, 1.0))

    def sorted_by_probability(
        self, *, descending: bool = True, tie_break: bool = True
    ) -> "ProbabilisticRelation":
        """Return a copy sorted by probability, deterministically.

        Equal probabilities are tie-broken by the value columns (ascending),
        so two evaluations of equivalent plans rank equal-probability tuples
        identically regardless of intermediate row order.  Relations whose
        value columns cannot be ordered fall back to a stable
        probability-only sort (ties keep input order).
        """
        keys: list[tuple[str, bool]] = [(PROBABILITY_COLUMN, not descending)]
        if tie_break:
            keys += [(name, True) for name in self.value_columns]
        try:
            ordered = self._relation.sort_by(keys)
        except TypeError:
            ordered = self._relation.sort_by([(PROBABILITY_COLUMN, not descending)])
        return ProbabilisticRelation(ordered, validate=False)

    def top(self, k: int) -> "ProbabilisticRelation":
        """Return the ``k`` most probable tuples without a full sort.

        The result is exactly ``sorted_by_probability().relation.head(k)``
        (probability descending, ties broken by value columns ascending), but
        computed with a partial-sort kernel: ``np.argpartition`` selects the
        candidate rows whose probability reaches the k-th largest value —
        including every tuple tied at the boundary, so the deterministic
        tie-break stays exact — and only that candidate set is sorted.
        """
        if k <= 0:
            return ProbabilisticRelation(self._relation.head(0), validate=False)
        if k >= self.num_rows:
            return self.sorted_by_probability()
        probabilities = self.probabilities()
        boundary = len(probabilities) - k
        kth_largest = probabilities[np.argpartition(probabilities, boundary)[boundary]]
        candidates = np.nonzero(probabilities >= kth_largest)[0]
        subset = ProbabilisticRelation(self._relation.take(candidates), validate=False)
        return ProbabilisticRelation(
            subset.sorted_by_probability().relation.head(k), validate=False
        )
