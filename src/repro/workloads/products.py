"""The toy product catalog of the paper's running example.

Section 2's "toy scenario" performs keyword search on a product database,
restricted to the description of products in the category ``toy``.  The
generator produces products as triples: every product has a ``type``, a
``category``, a ``description``, a ``price`` (an integer, so the
type-partitioned storage has something to partition) and optionally a
``brand`` — the mix of properties also feeds the partitioning and
emergent-schema benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.triples.triple_store import Triple
from repro.workloads.vocabulary import ZipfianVocabulary

DEFAULT_CATEGORIES = ("toy", "book", "game", "tool", "garden", "kitchen", "sport", "music")


@dataclass
class ProductWorkload:
    """A generated product catalog."""

    triples: list[Triple]
    product_ids: list[str]
    categories: tuple[str, ...]
    vocabulary: ZipfianVocabulary
    seed: int
    extra_properties: int = 0
    descriptions: dict[str, str] = field(default_factory=dict)

    @property
    def num_products(self) -> int:
        return len(self.product_ids)

    def products_in_category(self, category: str) -> list[str]:
        """Product identifiers whose ``category`` property equals ``category``."""
        return [
            triple.subject
            for triple in self.triples
            if triple.property == "category" and triple.object == category
        ]


def generate_product_triples(
    num_products: int,
    *,
    categories: tuple[str, ...] = DEFAULT_CATEGORIES,
    description_length: int = 30,
    extra_properties: int = 0,
    vocabulary_size: int = 3000,
    seed: int = 13,
) -> ProductWorkload:
    """Generate a product catalog of ``num_products`` products as triples.

    ``extra_properties`` adds that many additional sparse properties
    (``attr_0`` … ``attr_N``), which is how the partitioning benchmark varies
    the property count.
    """
    if num_products < 1:
        raise WorkloadError("num_products must be positive")
    vocabulary = ZipfianVocabulary(vocabulary_size, seed=seed)
    rng = np.random.default_rng(seed)
    triples: list[Triple] = []
    product_ids: list[str] = []
    descriptions: dict[str, str] = {}
    brands = [f"brand{index}" for index in range(max(3, num_products // 50))]

    for index in range(1, num_products + 1):
        product = f"product{index}"
        product_ids.append(product)
        category = categories[int(rng.integers(0, len(categories)))]
        description = " ".join(vocabulary.sample(rng, description_length))
        descriptions[product] = description
        triples.append(Triple(product, "type", "product"))
        triples.append(Triple(product, "category", category))
        triples.append(Triple(product, "description", description))
        triples.append(Triple(product, "price", int(rng.integers(1, 500))))
        if rng.random() < 0.6:
            triples.append(Triple(product, "brand", brands[int(rng.integers(0, len(brands)))]))
        for extra in range(extra_properties):
            if rng.random() < 0.3:
                value = " ".join(vocabulary.sample(rng, 3))
                triples.append(Triple(product, f"attr_{extra}", value))

    return ProductWorkload(
        triples=triples,
        product_ids=product_ids,
        categories=categories,
        vocabulary=vocabulary,
        seed=seed,
        extra_properties=extra_properties,
        descriptions=descriptions,
    )
