"""Synthetic plain-text document collections.

Stand-in for the 1.1M-document raw-text collection of Section 2.1: documents
are sequences of Zipfian-sampled terms with log-normally distributed lengths,
so posting lists, document-length variance and IDF spread behave like real
text at a much smaller scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.workloads.vocabulary import ZipfianVocabulary


@dataclass
class SyntheticCollection:
    """A generated document collection."""

    documents: list[tuple[int, str]]
    vocabulary: ZipfianVocabulary
    seed: int

    @property
    def num_documents(self) -> int:
        return len(self.documents)

    def to_relation(self) -> Relation:
        """Return the collection as a ``docs(docID, data)`` relation."""
        schema = Schema([Field("docID", DataType.INT), Field("data", DataType.STRING)])
        ids = [doc_id for doc_id, _ in self.documents]
        texts = [text for _, text in self.documents]
        return Relation(
            schema, [Column(ids, DataType.INT), Column(texts, DataType.STRING)]
        )

    def raw_size_bytes(self) -> int:
        """Total size of the raw text (the paper reports collection size in GB)."""
        return sum(len(text.encode("utf-8")) for _, text in self.documents)

    def average_length_terms(self) -> float:
        if not self.documents:
            return 0.0
        return float(np.mean([len(text.split()) for _, text in self.documents]))


def generate_collection(
    num_documents: int,
    *,
    average_length: int = 60,
    vocabulary_size: int = 5000,
    zipf_exponent: float = 1.1,
    seed: int = 42,
    vocabulary: ZipfianVocabulary | None = None,
) -> SyntheticCollection:
    """Generate a synthetic collection of ``num_documents`` documents."""
    if num_documents < 1:
        raise WorkloadError("num_documents must be positive")
    if average_length < 1:
        raise WorkloadError("average_length must be positive")
    vocabulary = (
        vocabulary
        if vocabulary is not None
        else ZipfianVocabulary(vocabulary_size, exponent=zipf_exponent, seed=seed)
    )
    rng = np.random.default_rng(seed)
    # log-normal lengths centred on average_length, clipped to at least 3 terms
    sigma = 0.4
    mu = np.log(average_length) - sigma * sigma / 2.0
    lengths = np.clip(rng.lognormal(mu, sigma, num_documents).astype(np.int64), 3, None)
    documents: list[tuple[int, str]] = []
    for doc_id, length in enumerate(lengths, start=1):
        terms = vocabulary.sample(rng, int(length))
        documents.append((doc_id, " ".join(terms)))
    return SyntheticCollection(documents=documents, vocabulary=vocabulary, seed=seed)
