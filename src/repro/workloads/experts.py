"""An expert-finding workload: the heterogeneous-data motivation of the paper.

The paper's introduction motivates IR-on-DB with "complex search tasks in
heterogeneous data spaces, such as enterprise search, expert finding,
recommendation".  This generator produces the classic expert-finding graph:

* **people** with a name and an affiliation;
* **documents** with text, each authored by one or more people
  (``authoredBy`` edges);
* **topics**: every document is about a topic, and a person's expertise is
  defined (ground truth) by the topics of the documents they author.

The expert-finding strategy (see ``examples/expert_finding.py``) ranks
documents by the query, traverses ``authoredBy`` to people, and merges
evidence per person — the same shape as the paper's auction strategy with
the traversal at the end instead of the middle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.triples.triple_store import Triple
from repro.workloads.vocabulary import ZipfianVocabulary

AFFILIATIONS = ("research", "engineering", "sales", "support", "design")


@dataclass
class ExpertWorkload:
    """A generated expert-finding graph."""

    triples: list[Triple]
    person_ids: list[str]
    document_ids: list[str]
    topics: list[str]
    document_authors: dict[str, list[str]]
    person_topics: dict[str, set[str]] = field(default_factory=dict)
    topic_terms: dict[str, list[str]] = field(default_factory=dict)
    vocabulary: ZipfianVocabulary | None = None
    seed: int = 0

    @property
    def num_people(self) -> int:
        return len(self.person_ids)

    @property
    def num_documents(self) -> int:
        return len(self.document_ids)

    def experts_on(self, topic: str) -> list[str]:
        """Ground truth: people who authored at least one document on ``topic``."""
        return sorted(
            person for person, topics in self.person_topics.items() if topic in topics
        )

    def query_for_topic(self, topic: str, terms: int = 3) -> str:
        """A query phrased in the topic's distinctive vocabulary."""
        return " ".join(self.topic_terms[topic][:terms])


def generate_expert_triples(
    num_people: int = 50,
    num_documents: int = 400,
    *,
    num_topics: int = 8,
    document_length: int = 30,
    topic_term_count: int = 15,
    authors_per_document: int = 2,
    vocabulary_size: int = 3000,
    seed: int = 71,
) -> ExpertWorkload:
    """Generate people, documents, authorship edges and topical text."""
    if num_people < 1 or num_documents < 1 or num_topics < 1:
        raise WorkloadError("num_people, num_documents and num_topics must be positive")
    if authors_per_document < 1:
        raise WorkloadError("authors_per_document must be positive")

    vocabulary = ZipfianVocabulary(vocabulary_size, seed=seed)
    rng = np.random.default_rng(seed)

    topics = [f"topic{index}" for index in range(num_topics)]
    # distinctive topic vocabularies: disjoint slices of the mid-frequency range
    topic_terms: dict[str, list[str]] = {}
    offset = vocabulary_size // 4
    for index, topic in enumerate(topics):
        start = offset + index * topic_term_count
        topic_terms[topic] = vocabulary.words[start : start + topic_term_count]

    triples: list[Triple] = []
    person_ids = [f"person{index}" for index in range(1, num_people + 1)]
    for person in person_ids:
        triples.append(Triple(person, "type", "person"))
        triples.append(Triple(person, "name", f"name of {person}"))
        triples.append(
            Triple(person, "affiliation", AFFILIATIONS[int(rng.integers(0, len(AFFILIATIONS)))])
        )

    document_ids: list[str] = []
    document_authors: dict[str, list[str]] = {}
    person_topics: dict[str, set[str]] = {person: set() for person in person_ids}
    for index in range(1, num_documents + 1):
        document = f"doc{index}"
        document_ids.append(document)
        topic = topics[int(rng.integers(0, num_topics))]
        # a document mixes general vocabulary with its topic's distinctive terms
        general = vocabulary.sample(rng, document_length // 2)
        pool = topic_terms[topic]
        topical = [
            pool[int(position)]
            for position in rng.integers(0, len(pool), document_length - len(general))
        ]
        text = " ".join(general + topical)
        authors = [
            person_ids[int(position)]
            for position in rng.choice(
                num_people, size=min(authors_per_document, num_people), replace=False
            )
        ]
        document_authors[document] = authors
        triples.append(Triple(document, "type", "document"))
        triples.append(Triple(document, "description", text))
        triples.append(Triple(document, "about", topic))
        for author in authors:
            triples.append(Triple(document, "authoredBy", author))
            person_topics[author].add(topic)

    return ExpertWorkload(
        triples=triples,
        person_ids=person_ids,
        document_ids=document_ids,
        topics=topics,
        document_authors=document_authors,
        person_topics=person_topics,
        topic_terms=topic_terms,
        vocabulary=vocabulary,
        seed=seed,
    )
