"""Keyword query workloads.

The paper's measurements are stated for "3-term queries" (Section 2.1) and a
production query stream of 150,000 requests per day (Section 3).  The
generator draws query terms from a collection's vocabulary with the same
Zipfian skew as the documents — so frequent query terms hit long posting
lists, as they do in production — and can mix in a fraction of rare terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.vocabulary import ZipfianVocabulary


@dataclass
class QueryWorkload:
    """A generated keyword query stream."""

    queries: list[str]
    terms_per_query: int
    seed: int

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def generate_queries(
    vocabulary: ZipfianVocabulary,
    num_queries: int,
    *,
    terms_per_query: int = 3,
    rare_term_fraction: float = 0.2,
    seed: int = 2024,
) -> QueryWorkload:
    """Generate ``num_queries`` keyword queries of ``terms_per_query`` terms each."""
    if num_queries < 1:
        raise WorkloadError("num_queries must be positive")
    if terms_per_query < 1:
        raise WorkloadError("terms_per_query must be positive")
    if not 0.0 <= rare_term_fraction <= 1.0:
        raise WorkloadError("rare_term_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    rare_pool = vocabulary.rare_terms(max(10, vocabulary.size // 10))
    queries: list[str] = []
    for _ in range(num_queries):
        terms: list[str] = []
        for _ in range(terms_per_query):
            if rng.random() < rare_term_fraction:
                terms.append(rare_pool[int(rng.integers(0, len(rare_pool)))])
            else:
                terms.append(vocabulary.sample(rng, 1)[0])
        queries.append(" ".join(terms))
    return QueryWorkload(queries=queries, terms_per_query=terms_per_query, seed=seed)
