"""A deterministic Zipfian vocabulary for synthetic text.

Real document collections have heavily skewed term distributions; the
benchmarks depend on that skew (posting-list lengths, IDF spread), so the
synthetic generator draws terms from a Zipf-like distribution over a
pronounceable generated vocabulary.
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import WorkloadError

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def _make_word(rng: random.Random, syllables: int) -> str:
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_CONSONANTS))
        parts.append(rng.choice(_VOWELS))
    return "".join(parts)


class ZipfianVocabulary:
    """A fixed vocabulary whose sampling follows a Zipf-like rank distribution."""

    def __init__(self, size: int = 5000, *, exponent: float = 1.1, seed: int = 7):
        if size < 10:
            raise WorkloadError("vocabulary size must be at least 10")
        if exponent <= 0:
            raise WorkloadError("the Zipf exponent must be positive")
        self.size = size
        self.exponent = exponent
        self.seed = seed
        rng = random.Random(seed)
        words: list[str] = []
        seen: set[str] = set()
        while len(words) < size:
            word = _make_word(rng, rng.randint(2, 4))
            if word not in seen:
                seen.add(word)
                words.append(word)
        self.words = words
        ranks = np.arange(1, size + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, exponent)
        self._probabilities = weights / weights.sum()
        self._cumulative = np.cumsum(self._probabilities)

    def sample(self, rng: np.random.Generator, count: int) -> list[str]:
        """Draw ``count`` terms (with replacement) following the Zipf distribution."""
        uniform = rng.random(count)
        indices = np.searchsorted(self._cumulative, uniform)
        indices = np.clip(indices, 0, self.size - 1)
        return [self.words[index] for index in indices]

    def frequent_terms(self, count: int) -> list[str]:
        """The ``count`` most frequent terms (lowest ranks)."""
        return self.words[:count]

    def rare_terms(self, count: int) -> list[str]:
        """The ``count`` least frequent terms (highest ranks)."""
        return self.words[-count:]

    def probability_of_rank(self, rank: int) -> float:
        """The sampling probability of the term at 1-based ``rank``."""
        if rank < 1 or rank > self.size:
            raise WorkloadError(f"rank {rank} outside [1, {self.size}]")
        return float(self._probabilities[rank - 1])
