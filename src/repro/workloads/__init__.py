"""Synthetic workload generators.

The paper's measurements use a 2.3 GB / 1.1 M-document raw-text collection
(Section 2.1) and a confidential customer database of ~8 M auction lots
(Section 3).  Neither is available, so this package generates synthetic
stand-ins with controllable scale:

* :mod:`repro.workloads.vocabulary` — a deterministic Zipfian vocabulary;
* :mod:`repro.workloads.text_collection` — plain ``(docID, text)`` document
  collections for the keyword-search benchmarks;
* :mod:`repro.workloads.products` — the toy product catalog (products with a
  category and a description) as triples;
* :mod:`repro.workloads.auctions` — the auction graph (lots, auctions,
  ``hasAuction`` edges, descriptions) as triples;
* :mod:`repro.workloads.queries` — keyword query workloads drawn from the
  collection vocabulary.

All generators take an explicit ``seed`` so every benchmark run is
reproducible.
"""

from repro.workloads.auctions import AuctionWorkload, generate_auction_triples
from repro.workloads.experts import ExpertWorkload, generate_expert_triples
from repro.workloads.products import ProductWorkload, generate_product_triples
from repro.workloads.queries import QueryWorkload, generate_queries
from repro.workloads.text_collection import SyntheticCollection, generate_collection
from repro.workloads.vocabulary import ZipfianVocabulary

__all__ = [
    "AuctionWorkload",
    "ExpertWorkload",
    "ProductWorkload",
    "QueryWorkload",
    "SyntheticCollection",
    "ZipfianVocabulary",
    "generate_auction_triples",
    "generate_collection",
    "generate_expert_triples",
    "generate_product_triples",
    "generate_queries",
]
