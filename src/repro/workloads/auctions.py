"""The synthetic auction graph of Section 3.

The paper's customer database contains ~8 million *lots* grouped into ~25
thousand *auctions*; lots are connected to auctions via
``(lot23, hasAuction, auction12)`` triples, and both lots and auctions carry
textual descriptions inside "a rich semantic graph".  The generator produces
a scaled-down graph with the same structure:

* every lot has ``type``, ``description``, ``hasAuction`` and a numeric
  ``estimate``;
* every auction has ``type``, ``description`` and a ``location``;
* lot descriptions partially overlap with their auction's description
  (a fraction of terms is shared), so ranking lots via the auction
  description — the right branch of Figure 3 — genuinely adds information.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.triples.triple_store import Triple
from repro.workloads.vocabulary import ZipfianVocabulary

LOCATIONS = ("amsterdam", "utrecht", "rotterdam", "eindhoven", "groningen")


@dataclass
class AuctionWorkload:
    """A generated auction graph."""

    triples: list[Triple]
    lot_ids: list[str]
    auction_ids: list[str]
    lot_auction: dict[str, str]
    vocabulary: ZipfianVocabulary
    seed: int
    lot_descriptions: dict[str, str] = field(default_factory=dict)
    auction_descriptions: dict[str, str] = field(default_factory=dict)

    @property
    def num_lots(self) -> int:
        return len(self.lot_ids)

    @property
    def num_auctions(self) -> int:
        return len(self.auction_ids)

    def lots_in_auction(self, auction_id: str) -> list[str]:
        return [lot for lot, auction in self.lot_auction.items() if auction == auction_id]


def generate_auction_triples(
    num_lots: int,
    num_auctions: int | None = None,
    *,
    lot_description_length: int = 25,
    auction_description_length: int = 40,
    shared_term_fraction: float = 0.3,
    vocabulary_size: int = 4000,
    seed: int = 99,
) -> AuctionWorkload:
    """Generate an auction graph with ``num_lots`` lots.

    ``num_auctions`` defaults to the paper's ratio of roughly 320 lots per
    auction (8M lots / 25k auctions), with a minimum of one auction.
    """
    if num_lots < 1:
        raise WorkloadError("num_lots must be positive")
    if num_auctions is None:
        num_auctions = max(1, num_lots // 320)
    if num_auctions < 1:
        raise WorkloadError("num_auctions must be positive")
    if not 0.0 <= shared_term_fraction <= 1.0:
        raise WorkloadError("shared_term_fraction must lie in [0, 1]")

    vocabulary = ZipfianVocabulary(vocabulary_size, seed=seed)
    rng = np.random.default_rng(seed)
    triples: list[Triple] = []
    lot_ids: list[str] = []
    auction_ids: list[str] = []
    lot_auction: dict[str, str] = {}
    lot_descriptions: dict[str, str] = {}
    auction_descriptions: dict[str, str] = {}

    auction_terms: dict[str, list[str]] = {}
    for index in range(1, num_auctions + 1):
        auction = f"auction{index}"
        auction_ids.append(auction)
        terms = vocabulary.sample(rng, auction_description_length)
        auction_terms[auction] = terms
        description = " ".join(terms)
        auction_descriptions[auction] = description
        triples.append(Triple(auction, "type", "auction"))
        triples.append(Triple(auction, "description", description))
        triples.append(Triple(auction, "location", LOCATIONS[int(rng.integers(0, len(LOCATIONS)))]))

    for index in range(1, num_lots + 1):
        lot = f"lot{index}"
        lot_ids.append(lot)
        auction = auction_ids[int(rng.integers(0, num_auctions))]
        lot_auction[lot] = auction
        shared_count = int(lot_description_length * shared_term_fraction)
        own_count = lot_description_length - shared_count
        shared_pool = auction_terms[auction]
        shared = [
            shared_pool[int(position)]
            for position in rng.integers(0, len(shared_pool), shared_count)
        ]
        own = vocabulary.sample(rng, own_count)
        description = " ".join(shared + own)
        lot_descriptions[lot] = description
        triples.append(Triple(lot, "type", "lot"))
        triples.append(Triple(lot, "description", description))
        triples.append(Triple(lot, "hasAuction", auction))
        triples.append(Triple(lot, "estimate", int(rng.integers(10, 5000))))

    return AuctionWorkload(
        triples=triples,
        lot_ids=lot_ids,
        auction_ids=auction_ids,
        lot_auction=lot_auction,
        vocabulary=vocabulary,
        seed=seed,
        lot_descriptions=lot_descriptions,
        auction_descriptions=auction_descriptions,
    )
