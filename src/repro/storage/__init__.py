"""Persistent columnar snapshots: durable storage for the whole engine state.

Every process start used to rebuild the database, triple store and text
statistics from CSV/text in Python loops; this package makes engine state
durable instead.  Snapshots are versioned directories of raw binary buffers
under a JSON manifest (see :mod:`repro.storage.format`), read back through
:func:`numpy.memmap` so cold start is O(metadata) and numeric columns are
never copied.

Entry points, lowest layer first:

* :func:`save_relation` / :func:`open_relation` — one table;
* :meth:`Database.save` / :meth:`Database.open` — every base table, with
  lazy per-table hydration through the catalog;
* :meth:`InvertedIndex.save` / :meth:`InvertedIndex.open` and
  :meth:`CollectionStatistics.save` / :meth:`CollectionStatistics.open` —
  postings as concatenated arrays plus term offsets, sliced from memmaps;
* :meth:`TripleStore.save` / :meth:`TripleStore.open` — the triple source
  plus the storage-strategy layout (partition tables live in the database);
* :meth:`Engine.save` / :meth:`Engine.open` — all of the above plus
  analyzer/ranking configuration, compiled SpinQL sources (recompiled on
  open to warm the plan cache) and warm collection statistics;
* ``Engine.save(path, shards=N)`` / :meth:`Engine.open_sharded` /
  :meth:`Engine.open_shard` — the *partitioned* layout
  (:mod:`repro.storage.shards`): tables split by hash range on a shard key,
  postings split by the document partition, each shard a self-contained
  snapshot directory under a top-level shard map.
"""

from repro.storage.columnio import read_column, write_column
from repro.storage.engine_io import open_engine, save_engine
from repro.storage.format import FORMAT_VERSION, read_manifest, write_manifest
from repro.storage.index_io import (
    open_inverted_index,
    open_statistics,
    save_inverted_index,
    save_statistics,
)
from repro.storage.shards import (
    is_sharded_snapshot,
    open_shard,
    read_shard_map,
    save_sharded_engine,
)
from repro.storage.snapshot import (
    open_database,
    open_relation,
    restore_triple_store,
    save_database,
    save_relation,
    save_triple_store,
)

__all__ = [
    "FORMAT_VERSION",
    "is_sharded_snapshot",
    "open_shard",
    "read_shard_map",
    "save_sharded_engine",
    "open_database",
    "open_engine",
    "open_inverted_index",
    "open_relation",
    "open_statistics",
    "read_column",
    "read_manifest",
    "restore_triple_store",
    "save_database",
    "save_engine",
    "save_inverted_index",
    "save_relation",
    "save_statistics",
    "save_triple_store",
    "write_column",
    "write_manifest",
]
