"""The on-disk snapshot format: manifests, versioning, and path layout.

A snapshot is a directory containing one ``manifest.json`` plus raw binary
buffers.  The manifest carries a ``format_version``; readers refuse both
newer and older versions with a clear "rebuild or upgrade" message rather
than guessing at layouts.  Binary buffers are plain little-endian NumPy
dumps so that :func:`numpy.memmap` can map them back without copying:

* ``int``/``float``/``bool`` columns are stored as-is (``int64``,
  ``float64``, one-byte bools);
* ``string`` columns are dictionary-encoded: an integer ``codes`` buffer
  plus the sorted dictionary as one UTF-8 ``bytes`` blob with an ``int64``
  ``offsets`` buffer (``len(dictionary) + 1`` entries).

Every multi-file structure (table, index, statistics, store, engine) lives
in its own subdirectory with its own manifest, so the pieces can also be
saved and opened independently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import SnapshotVersionError, StorageError

#: bumped whenever the binary layout or the manifest schema changes.
#: version 2: partitioned snapshots (top-level shard maps, per-shard rowid
#: relations, statistics split by document partition) — see
#: :mod:`repro.storage.shards`.  Readers refuse version-1 snapshots with the
#: "rebuild or upgrade" message below; re-save them with the current library.
FORMAT_VERSION = 2

MANIFEST_NAME = "manifest.json"


def ensure_directory(path: Path) -> Path:
    """Create ``path`` (and parents), wrapping filesystem errors in StorageError.

    ``FileExistsError`` (the target is a file) and permission problems all
    surface as :class:`StorageError` naming the offending path, so CLI
    callers report them instead of crashing with a traceback.
    """
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise StorageError(f"cannot create snapshot directory: {error}", str(path)) from error
    return path


def write_manifest(directory: Path, kind: str, payload: dict[str, Any]) -> None:
    """Write ``payload`` as the manifest of ``directory``, stamping kind/version."""
    manifest = {"format_version": FORMAT_VERSION, "kind": kind, **payload}
    ensure_directory(directory)
    path = directory / MANIFEST_NAME
    try:
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
    except OSError as error:
        raise StorageError(f"cannot write snapshot manifest: {error}", str(path)) from error


def read_manifest(directory: Path, expected_kind: str) -> dict[str, Any]:
    """Read and validate the manifest of ``directory``.

    Raises :class:`StorageError` when the directory or manifest is missing or
    malformed and :class:`SnapshotVersionError` on a version mismatch.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise StorageError("snapshot manifest not found", str(path)) from None
    except OSError as error:
        raise StorageError(f"cannot read snapshot manifest: {error}", str(path)) from error
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as error:
        raise StorageError(f"snapshot manifest is not valid JSON: {error}", str(path)) from error
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"snapshot format version {version!r} does not match this library's "
            f"version {FORMAT_VERSION}; rebuild the snapshot from source data with "
            "Database.save()/Engine.save(), or upgrade/downgrade the library to "
            "the version that wrote it",
            str(path),
        )
    kind = manifest.get("kind")
    if kind != expected_kind:
        raise StorageError(
            f"snapshot at this path holds a {kind!r} snapshot, expected {expected_kind!r}",
            str(path),
        )
    return manifest


def require_directory(path: Path, *, what: str = "snapshot") -> Path:
    """Return ``path`` as a :class:`~pathlib.Path`, requiring it to be a directory."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"{what} directory does not exist", str(path))
    if not path.is_dir():
        raise StorageError(f"{what} path is not a directory", str(path))
    return path
