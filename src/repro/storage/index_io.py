"""Snapshots for the IR layer: inverted indexes and collection statistics.

Both structures serialize their postings the same way: all per-term arrays
concatenated into single buffers plus one ``int64`` offsets array (length
``num_terms + 1``), so that term ``t``'s postings are
``buffer[offsets[t]:offsets[t + 1]]``.  On open those buffers come back as
memmaps and each term's postings are *slices* of them — no per-term files,
no rebuild, no copies for the numeric payload.

Document identifiers are stored as a typed column (int or string), term
vocabularies as ordered UTF-8 string arrays.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.ir.inverted_index import InvertedIndex, PackedPostings
from repro.ir.statistics import CollectionStatistics
from repro.relational.column import Column, DataType
from repro.storage.columnio import (
    read_array,
    read_column,
    read_string_array,
    write_array,
    write_column,
    write_string_array,
)
from repro.storage.format import ensure_directory, read_manifest, require_directory, write_manifest
from repro.text.analyzers import Analyzer, StandardAnalyzer

_INT64 = np.dtype("<i8")


def _doc_id_column(doc_ids: list[Any]) -> Column:
    dtype = DataType.of_value(doc_ids[0]) if doc_ids else DataType.INT
    return Column(doc_ids, dtype)


def _analyzer_payload(analyzer: Analyzer) -> dict[str, Any]:
    payload: dict[str, Any] = dict(analyzer.describe())
    language = getattr(analyzer, "language", None)
    if language is not None:
        payload["language"] = language
    return payload


def _rebuild_analyzer(payload: dict[str, Any], analyzer: Analyzer | None) -> Analyzer:
    if analyzer is not None:
        return analyzer
    language = payload.get("language")
    if isinstance(language, str):
        return StandardAnalyzer(language)
    return StandardAnalyzer()


# -- inverted indexes --------------------------------------------------------


def save_inverted_index(index: InvertedIndex, path: str | Path) -> Path:
    """Serialize ``index`` into the directory ``path``."""
    directory = Path(path)
    ensure_directory(directory)
    doc_ids = index._doc_ids
    doc_slot = {doc_id: slot for slot, doc_id in enumerate(doc_ids)}
    terms = sorted(index._postings)

    doc_indices: list[int] = []
    positions: list[int] = []
    offsets = np.zeros(len(terms) + 1, dtype=_INT64)
    for slot, term in enumerate(terms):
        for doc_id, position in index._postings[term]:
            doc_indices.append(doc_slot[doc_id])
            positions.append(position)
        offsets[slot + 1] = len(doc_indices)

    write_array(np.asarray(doc_indices, dtype=_INT64), directory / "postings.docs.bin")
    write_array(np.asarray(positions, dtype=_INT64), directory / "postings.positions.bin")
    write_array(offsets, directory / "postings.offsets.bin")
    lengths = np.asarray([index._doc_lengths[doc_id] for doc_id in doc_ids], dtype=_INT64)
    write_array(lengths, directory / "doc_lengths.bin")

    doc_ids_entry = write_column(_doc_id_column(doc_ids), directory, "doc_ids")
    terms_entry = write_string_array(np.asarray(terms, dtype=object), directory, "terms")
    write_manifest(
        directory,
        "inverted-index",
        {
            "num_documents": len(doc_ids),
            "num_terms": len(terms),
            "num_postings": int(offsets[-1]),
            "doc_ids": doc_ids_entry,
            "terms": terms_entry,
            "analyzer": _analyzer_payload(index.analyzer),
        },
    )
    return directory


def open_inverted_index(
    path: str | Path, *, analyzer: Analyzer | None = None, mmap: bool = True
) -> InvertedIndex:
    """Open an index snapshot; posting lists are sliced from memmaps on demand."""
    directory = require_directory(Path(path), what="inverted-index snapshot")
    manifest = read_manifest(directory, "inverted-index")
    num_terms = int(manifest["num_terms"])
    num_postings = int(manifest["num_postings"])
    num_documents = int(manifest["num_documents"])

    terms = read_string_array(directory, manifest["terms"])
    doc_ids = read_column(directory, manifest["doc_ids"], mmap=mmap).to_list()
    offsets = read_array(directory / "postings.offsets.bin", _INT64, num_terms + 1, mmap=False)
    doc_indices = read_array(directory / "postings.docs.bin", _INT64, num_postings, mmap=mmap)
    positions = read_array(
        directory / "postings.positions.bin", _INT64, num_postings, mmap=mmap
    )
    lengths = read_array(directory / "doc_lengths.bin", _INT64, num_documents, mmap=False)

    packed = PackedPostings(list(terms), offsets, doc_indices, positions, doc_ids)
    resolved = _rebuild_analyzer(manifest["analyzer"], analyzer)
    return InvertedIndex.from_packed(packed, doc_ids, lengths.tolist(), resolved)


# -- collection statistics ---------------------------------------------------


def save_statistics(statistics: CollectionStatistics, path: str | Path) -> Path:
    """Serialize collection statistics into the directory ``path``."""
    directory = Path(path)
    ensure_directory(directory)
    terms = sorted(statistics.term_ids, key=lambda term: statistics.term_ids[term])
    term_id_array = np.asarray([statistics.term_ids[term] for term in terms], dtype=_INT64)

    doc_indices: list[np.ndarray] = []
    frequencies: list[np.ndarray] = []
    offsets = np.zeros(len(terms) + 1, dtype=_INT64)
    total = 0
    for slot, term in enumerate(terms):
        docs, freqs = statistics.postings[statistics.term_ids[term]]
        doc_indices.append(docs)
        frequencies.append(freqs)
        total += len(docs)
        offsets[slot + 1] = total

    concat = np.concatenate(doc_indices) if doc_indices else np.empty(0, dtype=_INT64)
    write_array(concat.astype(_INT64, copy=False), directory / "postings.docs.bin")
    concat = np.concatenate(frequencies) if frequencies else np.empty(0, dtype=_INT64)
    write_array(concat.astype(_INT64, copy=False), directory / "postings.freqs.bin")
    write_array(offsets, directory / "postings.offsets.bin")
    write_array(
        statistics.doc_lengths.astype(_INT64, copy=False), directory / "doc_lengths.bin"
    )
    write_array(term_id_array, directory / "term_ids.bin")

    doc_ids_entry = write_column(_doc_id_column(statistics.doc_ids), directory, "doc_ids")
    terms_entry = write_string_array(np.asarray(terms, dtype=object), directory, "terms")
    write_manifest(
        directory,
        "collection-statistics",
        {
            "num_documents": statistics.num_docs,
            "num_terms": len(terms),
            "num_postings": int(offsets[-1]),
            "total_terms": statistics.total_terms,
            "doc_ids": doc_ids_entry,
            "terms": terms_entry,
        },
    )
    return directory


def open_statistics(path: str | Path, *, mmap: bool = True) -> CollectionStatistics:
    """Open a statistics snapshot; posting arrays are memmap slices."""
    directory = require_directory(Path(path), what="statistics snapshot")
    manifest = read_manifest(directory, "collection-statistics")
    num_terms = int(manifest["num_terms"])
    num_postings = int(manifest["num_postings"])
    num_documents = int(manifest["num_documents"])

    terms = read_string_array(directory, manifest["terms"])
    doc_ids = read_column(directory, manifest["doc_ids"], mmap=mmap).to_list()
    term_id_array = read_array(directory / "term_ids.bin", _INT64, num_terms, mmap=False)
    offsets = read_array(directory / "postings.offsets.bin", _INT64, num_terms + 1, mmap=False)
    doc_indices = read_array(directory / "postings.docs.bin", _INT64, num_postings, mmap=mmap)
    frequencies = read_array(directory / "postings.freqs.bin", _INT64, num_postings, mmap=mmap)
    doc_lengths = read_array(directory / "doc_lengths.bin", _INT64, num_documents, mmap=mmap)

    term_ids: dict[str, int] = {}
    postings: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    document_frequency: dict[int, int] = {}
    for slot in range(num_terms):
        term_id = int(term_id_array[slot])
        term_ids[str(terms[slot])] = term_id
        start, stop = int(offsets[slot]), int(offsets[slot + 1])
        postings[term_id] = (doc_indices[start:stop], frequencies[start:stop])
        document_frequency[term_id] = stop - start

    return CollectionStatistics(
        doc_ids=doc_ids,
        doc_lengths=doc_lengths,
        term_ids=term_ids,
        postings=postings,
        document_frequency=document_frequency,
        total_terms=int(manifest["total_terms"]),
    )
