"""Column serialization: raw buffers out, zero-copy memmaps back in.

Numeric and boolean columns round-trip as raw little-endian buffers that
:func:`numpy.memmap` maps straight back — loading is O(1) and the process
never holds a second copy of the data.  String columns are
dictionary-encoded: the sorted distinct values go into one UTF-8 blob with
an offsets buffer, and an ``int64`` codes buffer indexes into it.  Reading a
string column decodes the (small) dictionary eagerly and gathers the object
array from the memmapped codes; the codes memmap is also seeded as the
column's :meth:`~repro.relational.column.Column.factorize` cache, so joins
and aggregations on a snapshot-backed column skip the encoding pass
entirely.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import StorageError
from repro.relational.column import Column, DataType
from repro.storage.format import ensure_directory

_RAW_DTYPES = {
    DataType.INT: np.dtype("<i8"),
    DataType.FLOAT: np.dtype("<f8"),
    DataType.BOOL: np.dtype("|b1"),
}

_CODES_DTYPE = np.dtype("<i8")
_OFFSETS_DTYPE = np.dtype("<i8")


def write_array(array: np.ndarray, path: Path) -> None:
    """Write ``array`` to ``path`` as a raw little-endian buffer."""
    try:
        array.tofile(path)
    except OSError as error:
        raise StorageError(f"cannot write column buffer: {error}", str(path)) from error


def read_array(path: Path, dtype: np.dtype, count: int, *, mmap: bool = True) -> np.ndarray:
    """Read ``count`` values of ``dtype`` from ``path`` (memmapped by default)."""
    if count == 0:
        return np.empty(0, dtype=dtype)
    try:
        if mmap:
            return np.memmap(path, dtype=dtype, mode="r", shape=(count,))
        return np.fromfile(path, dtype=dtype, count=count)
    except (OSError, ValueError) as error:
        raise StorageError(f"cannot read column buffer: {error}", str(path)) from error


def write_column(column: Column, directory: Path, stem: str) -> dict[str, Any]:
    """Serialize ``column`` into ``directory`` and return its manifest entry."""
    ensure_directory(directory)
    entry: dict[str, Any] = {
        "dtype": column.dtype.value,
        "rows": len(column),
        "stem": stem,
    }
    if column.dtype is DataType.STRING:
        # factorize() is cached (and pre-seeded on snapshot-backed columns),
        # so re-saving an opened snapshot skips the np.unique pass; the
        # dictionary may be a sorted superset of the live values, which the
        # format allows — codes always index into it
        codes, dictionary = column.factorize()
        blob, offsets = _encode_dictionary(dictionary)
        codes = codes.astype(_CODES_DTYPE, copy=False).reshape(-1)
        write_array(codes, directory / f"{stem}.codes.bin")
        write_array(offsets, directory / f"{stem}.dict.offsets.bin")
        _write_bytes(blob, directory / f"{stem}.dict.bytes.bin")
        entry["encoding"] = "dictionary"
        entry["dictionary_size"] = int(len(dictionary))
        entry["dictionary_bytes"] = int(len(blob))
        return entry
    raw = column.values.astype(_RAW_DTYPES[column.dtype], copy=False)
    write_array(raw, directory / f"{stem}.values.bin")
    entry["encoding"] = "raw"
    return entry


def read_column(directory: Path, entry: dict[str, Any], *, mmap: bool = True) -> Column:
    """Rebuild a :class:`Column` from its manifest ``entry`` (inverse of write)."""
    dtype = DataType(entry["dtype"])
    rows = int(entry["rows"])
    stem = entry["stem"]
    if dtype is DataType.STRING:
        codes = read_array(directory / f"{stem}.codes.bin", _CODES_DTYPE, rows, mmap=mmap)
        offsets = read_array(
            directory / f"{stem}.dict.offsets.bin",
            _OFFSETS_DTYPE,
            int(entry["dictionary_size"]) + 1,
            mmap=False,
        )
        blob = _read_bytes(
            directory / f"{stem}.dict.bytes.bin", int(entry["dictionary_bytes"])
        )
        dictionary = _decode_dictionary(blob, offsets)
        return Column.from_dictionary(codes, dictionary)
    values = read_array(directory / f"{stem}.values.bin", _RAW_DTYPES[dtype], rows, mmap=mmap)
    return Column(values, dtype)


def write_string_array(values: np.ndarray, directory: Path, stem: str) -> dict[str, Any]:
    """Serialize an object array of strings in order (no dictionary encoding)."""
    ensure_directory(directory)
    blob, offsets = _encode_dictionary(values)
    write_array(offsets, directory / f"{stem}.offsets.bin")
    _write_bytes(blob, directory / f"{stem}.bytes.bin")
    return {"stem": stem, "count": int(len(values)), "bytes": int(len(blob))}


def read_string_array(directory: Path, entry: dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`write_string_array` (always decoded eagerly)."""
    stem = entry["stem"]
    offsets = read_array(
        directory / f"{stem}.offsets.bin", _OFFSETS_DTYPE, int(entry["count"]) + 1, mmap=False
    )
    blob = _read_bytes(directory / f"{stem}.bytes.bin", int(entry["bytes"]))
    return _decode_dictionary(blob, offsets)


def _encode_dictionary(dictionary: np.ndarray) -> tuple[bytes, np.ndarray]:
    """UTF-8-encode the distinct values into one blob plus an offsets buffer."""
    encoded = [str(value).encode("utf-8") for value in dictionary]
    offsets = np.zeros(len(encoded) + 1, dtype=_OFFSETS_DTYPE)
    if encoded:
        np.cumsum([len(piece) for piece in encoded], out=offsets[1:])
    return b"".join(encoded), offsets


def _decode_dictionary(blob: bytes, offsets: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_encode_dictionary`: an object array of strings."""
    count = len(offsets) - 1
    dictionary = np.empty(count, dtype=object)
    for index in range(count):
        dictionary[index] = blob[offsets[index] : offsets[index + 1]].decode("utf-8")
    return dictionary


def _write_bytes(blob: bytes, path: Path) -> None:
    try:
        path.write_bytes(blob)
    except OSError as error:
        raise StorageError(f"cannot write dictionary blob: {error}", str(path)) from error


def _read_bytes(path: Path, count: int) -> bytes:
    if count == 0 and not path.exists():
        return b""
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        raise StorageError("dictionary blob missing from snapshot", str(path)) from None
    except OSError as error:
        raise StorageError(f"cannot read dictionary blob: {error}", str(path)) from error
    if len(blob) != count:
        raise StorageError(
            f"dictionary blob has {len(blob)} bytes, manifest expects {count}", str(path)
        )
    return blob
