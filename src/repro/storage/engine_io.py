"""Whole-engine snapshots: database + triple store + warm caches + config.

``Engine.save(path)`` produces::

    path/
      manifest.json        engine config, compiled sources, warm statistics
      database/            every base table (columnar, memmap-loadable)
      store/               triple source relation + storage-strategy layout
      stats/s0000/ ...     collection statistics of warm search engines

``Engine.open(path)`` reverses it lazily: tables hydrate on first scan, the
triple list on first access, and saved collection statistics on the first
search against their table — so opening is O(metadata) and the first query
is served warm.  Compiled SpinQL sources recorded in the manifest are
re-compiled eagerly (compilation is cheap and deterministic), warming the
plan cache.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import EngineError, SnapshotVersionError, StorageError
from repro.storage.format import ensure_directory, read_manifest, require_directory, write_manifest
from repro.storage.index_io import open_statistics, save_statistics
from repro.storage.snapshot import (
    open_database,
    restore_triple_store,
    save_database,
    save_triple_store,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import Engine

_SPINQL_PREFIX = "spinql::"


def _compiled_sources(engine: "Engine") -> list[dict[str, Any]]:
    """The SpinQL programs currently in the plan cache, as manifest entries."""
    sources = []
    for key in engine.plan_cache.keys():  # noqa: SIM118 - PlanCache is not a dict
        if not key.startswith(_SPINQL_PREFIX):
            continue
        _, _, parameters, source = key.split("::", 3)
        entry = {"source": source, "parameters": sorted(filter(None, parameters.split(",")))}
        if entry not in sources:
            sources.append(entry)
    return sources


def _warm_search_entries(engine: "Engine", directory: Path) -> list[dict[str, Any]]:
    """Save the statistics of every warm, reconstructible search engine."""
    entries = []
    for key, searcher in engine._search_engines.items():
        table, pipeline, model_key, expander_key, id_column, text_column = key
        if model_key != "default" or expander_key is not None:
            continue
        # statistics_available also counts a pending snapshot loader, so
        # open -> save round-trips keep their warmth; accessing .statistics
        # consumes the loader, which is fine at save time
        if not searcher.statistics_available:
            continue
        stats_dir = f"stats/s{len(entries):04d}"
        save_statistics(searcher.statistics, directory / stats_dir)
        entries.append(
            {
                "directory": stats_dir,
                "table": table,
                "pipeline": pipeline,
                "id_column": id_column,
                "text_column": text_column,
            }
        )
    return entries


def save_engine(engine: "Engine", path: str | Path) -> Path:
    """Snapshot the whole engine state under the directory ``path``."""
    directory = Path(path)
    ensure_directory(directory)
    engine.store._ensure_loaded()
    save_triple_store(engine.store, directory / "store")
    save_database(engine.database, directory / "database")
    write_manifest(
        directory,
        "engine",
        {
            "language": engine.language,
            "triples_table": engine.triples_table,
            "spinql": _compiled_sources(engine),
            "search_statistics": _warm_search_entries(engine, directory),
        },
    )
    return directory


def open_engine(path: str | Path, *, mmap: bool = True, **engine_kwargs: Any) -> "Engine":
    """Open an engine snapshot written by :func:`save_engine`.

    Raises :class:`EngineError` (with the offending path) when the snapshot
    directory or its pieces are missing, and :class:`SnapshotVersionError`
    on a format-version mismatch.
    """
    from repro.engine import Engine

    try:
        directory = require_directory(Path(path), what="engine snapshot")
        manifest = read_manifest(directory, "engine")
        database = open_database(directory / "database", mmap=mmap)
        engine = Engine(
            database,
            triples_table=manifest["triples_table"],
            language=manifest["language"],
            **engine_kwargs,
        )
        restore_triple_store(directory / "store", database, store=engine.store, mmap=mmap)
        for entry in manifest["spinql"]:
            engine._compile_spinql(entry["source"], frozenset(entry["parameters"]))
        for entry in manifest["search_statistics"]:
            _adopt_statistics(engine, directory, entry, mmap=mmap)
    except SnapshotVersionError:
        raise
    except (OSError, StorageError, KeyError, TypeError, ValueError) as error:
        # KeyError/TypeError/ValueError cover manifests that pass the version
        # check but are truncated or hand-edited (missing keys, wrong shapes)
        raise EngineError(
            f"cannot open engine snapshot at {path}: {error!r}"
        ) from error
    return engine


def _adopt_statistics(
    engine: "Engine", directory: Path, entry: dict[str, Any], *, mmap: bool
) -> None:
    """Point the matching search engine at its saved statistics (lazy)."""
    searcher = engine._search_engine(
        entry["table"],
        model=None,
        pipeline=entry["pipeline"],
        expander=None,
        id_column=entry["id_column"],
        text_column=entry["text_column"],
    )
    stats_dir = directory / entry["directory"]

    def loader() -> Any:
        return open_statistics(stats_dir, mmap=mmap)

    searcher.adopt_statistics_loader(loader)
