"""Relation, database, and triple-store snapshots.

``save_relation``/``open_relation`` round-trip a single
:class:`~repro.relational.relation.Relation`;
``save_database``/``open_database`` snapshot every base table of a
:class:`~repro.relational.database.Database`.  Opening a database registers
*lazy* tables in the catalog: nothing is decoded until the first scan of
each table, so cold start is O(number of tables), not O(data).

Views are named logical plans, not data — they are rebuilt by the
application (or by :meth:`Engine.open`'s warm-up), never serialized; the
manifest records their names purely as documentation.

``save_triple_store``/``restore_triple_store`` persist the triple source
relation plus the storage-strategy layout, so an opened store reuses the
partition tables already present in the database snapshot instead of
re-running :meth:`~repro.triples.partitioning.StorageStrategy.load`.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.relational.column import DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.storage.columnio import read_column, write_column
from repro.storage.format import read_manifest, require_directory, write_manifest

if TYPE_CHECKING:  # pragma: no cover
    from repro.relational.database import Database
    from repro.triples.triple_store import TripleStore

# -- relations ---------------------------------------------------------------


def _write_relation_payload(relation: Relation, directory: Path) -> dict[str, Any]:
    """Write the column buffers of ``relation`` and return its manifest payload."""
    columns = []
    for position, (field, column) in enumerate(zip(relation.schema, relation.columns().values())):
        entry = write_column(column, directory, f"c{position:04d}")
        entry["name"] = field.name
        columns.append(entry)
    return {"rows": relation.num_rows, "columns": columns}


def _read_relation_payload(payload: dict[str, Any], directory: Path, *, mmap: bool) -> Relation:
    """Inverse of :func:`_write_relation_payload`."""
    fields = []
    columns = []
    for entry in payload["columns"]:
        fields.append(Field(entry["name"], DataType(entry["dtype"])))
        columns.append(read_column(directory, entry, mmap=mmap))
    return Relation(Schema(fields), columns)


def save_relation(relation: Relation, path: str | Path) -> Path:
    """Serialize one relation into the directory ``path`` (created if needed)."""
    directory = Path(path)
    payload = _write_relation_payload(relation, directory)
    write_manifest(directory, "relation", payload)
    return directory


def open_relation(path: str | Path, *, mmap: bool = True) -> Relation:
    """Load a relation saved by :func:`save_relation` (memmap-backed by default)."""
    directory = require_directory(Path(path), what="relation snapshot")
    manifest = read_manifest(directory, "relation")
    return _read_relation_payload(manifest, directory, mmap=mmap)


# -- databases ---------------------------------------------------------------


def save_database(database: "Database", path: str | Path) -> Path:
    """Snapshot every base table of ``database`` under the directory ``path``."""
    directory = Path(path)
    tables = []
    for position, name in enumerate(database.table_names()):
        table_dir = directory / "tables" / f"t{position:04d}"
        payload = _write_relation_payload(database.table(name), table_dir)
        tables.append({"name": name, "directory": f"tables/t{position:04d}", **payload})
    write_manifest(directory, "database", {"tables": tables, "views": database.view_names()})
    return directory


def read_table_schemas(path: str | Path) -> "dict[str, Schema]":
    """Table schemas recorded in a database snapshot's manifest.

    Reads only the manifest — no column data is touched.  Used to declare
    lazy-table schemas so static analysis can check plans against snapshots
    without hydrating anything.
    """
    directory = require_directory(Path(path), what="database snapshot")
    manifest = read_manifest(directory, "database")
    return {
        table["name"]: Schema(
            [Field(entry["name"], DataType(entry["dtype"])) for entry in table["columns"]]
        )
        for table in manifest["tables"]
    }


def open_database(
    path: str | Path,
    *,
    database: "Database | None" = None,
    mmap: bool = True,
    lazy: bool = True,
) -> "Database":
    """Open a database snapshot, registering its tables (lazily by default).

    With ``lazy=True`` each table is hydrated on its first scan; with
    ``lazy=False`` every table is decoded immediately.  Pass an existing
    ``database`` to load the snapshot's tables into it (names must not
    clash) instead of creating a fresh instance.
    """
    from repro.relational.database import Database

    directory = require_directory(Path(path), what="database snapshot")
    manifest = read_manifest(directory, "database")
    database = database if database is not None else Database()
    for table in manifest["tables"]:
        table_dir = directory / table["directory"]
        if not lazy:
            relation = _read_relation_payload(table, table_dir, mmap=mmap)
            database.create_table(table["name"], relation)
            continue

        def loader(payload: dict[str, Any] = table, where: Path = table_dir) -> Relation:
            return _read_relation_payload(payload, where, mmap=mmap)

        # declare the manifest's schema up front so static analysis can
        # resolve column names/dtypes without hydrating the table
        schema = Schema(
            [Field(entry["name"], DataType(entry["dtype"])) for entry in table["columns"]]
        )
        database.catalog.create_lazy_table(table["name"], loader, schema=schema)
    return database


# -- triple stores -----------------------------------------------------------


def _object_tag(value: Any) -> str:
    """The type tag stored next to each stringified triple object.

    NumPy scalars count as their Python equivalents, matching
    :meth:`DataType.of_value` and the type-partitioned storage layout.
    """
    if isinstance(value, (bool, np.bool_)):
        return "bool"
    if isinstance(value, (int, np.integer)):
        return "int"
    if isinstance(value, (float, np.floating)):
        return "float"
    return "str"


def _revive_object(text: str, tag: str) -> Any:
    if tag == "int":
        return int(text)
    if tag == "float":
        return float(text)
    if tag == "bool":
        return text == "True"
    return text


def save_triple_store(store: "TripleStore", path: str | Path) -> Path:
    """Snapshot the triple source relation and the storage-strategy layout.

    The partition tables themselves live in the store's database and are
    covered by :func:`save_database`; this records how to interpret them.
    Unlike the partition tables (which the type-agnostic layouts stringify),
    the source relation keeps a type tag per object, so re-partitioning
    after a round-trip sees the original typed values.
    """
    from repro.relational.column import Column

    directory = Path(path)
    triples = store._triples
    schema = Schema(
        [
            Field("subject", DataType.STRING),
            Field("property", DataType.STRING),
            Field("object", DataType.STRING),
            Field("object_type", DataType.STRING),
            Field("p", DataType.FLOAT),
        ]
    )
    source = Relation(
        schema,
        [
            Column([triple.subject for triple in triples], DataType.STRING),
            Column([triple.property for triple in triples], DataType.STRING),
            Column([str(triple.object) for triple in triples], DataType.STRING),
            Column([_object_tag(triple.object) for triple in triples], DataType.STRING),
            Column([triple.probability for triple in triples], DataType.FLOAT),
        ],
    )
    save_relation(source, directory / "triples")
    write_manifest(
        directory,
        "triple-store",
        {
            "table_name": store.table_name,
            "num_triples": len(triples),
            "storage": {
                "name": store.storage.name,
                "state": store.storage.snapshot_state(),
            },
        },
    )
    return directory


def restore_triple_store(
    path: str | Path,
    database: "Database",
    *,
    store: "TripleStore | None" = None,
    mmap: bool = True,
) -> "TripleStore":
    """Rebuild a :class:`TripleStore` over an already-opened ``database``.

    The storage strategy is reconstructed from its snapshot state and marked
    loaded — its partition tables are expected to be present in ``database``
    (they are, when the database came from the same engine snapshot).  The
    triple list itself hydrates lazily on first access.  Pass ``store`` to
    restore in place (used by :meth:`Engine.open`) instead of building a new
    instance.
    """
    from repro.triples.partitioning import make_storage
    from repro.triples.triple_store import Triple, TripleStore

    directory = require_directory(Path(path), what="triple-store snapshot")
    manifest = read_manifest(directory, "triple-store")
    storage_info = manifest["storage"]
    storage = make_storage(storage_info["name"])
    storage.restore_state(storage_info["state"])
    if store is None:
        store = TripleStore(database, storage=storage, table_name=manifest["table_name"])
    else:
        store.database = database
        store.storage = storage
        store.table_name = manifest["table_name"]
    triples_dir = directory / "triples"

    def load_triples() -> list[Triple]:
        relation = open_relation(triples_dir, mmap=mmap)
        subjects = relation.column("subject").values
        properties = relation.column("property").values
        objects = relation.column("object").values
        tags = relation.column("object_type").values
        probabilities = relation.column("p").values
        return [
            Triple(subject, prop, _revive_object(obj, tag), float(probability))
            for subject, prop, obj, tag, probability in zip(
                subjects, properties, objects, tags, probabilities
            )
        ]

    store.adopt_snapshot(load_triples)
    return store
