"""Partitioned engine snapshots: the sharded on-disk layout.

``Engine.save(path, shards=N)`` writes::

    path/
      manifest.json          the shard map: shard count, partitioner, per-table
                             shard keys, shard directories
      shard-0000/            a fully self-contained engine snapshot holding
        manifest.json        shard 0's fragment of every base table, its slice
        database/ store/     of the triple list, and its slice of every warm
        stats/               collection-statistics snapshot (postings split by
        rowids/              the document partition)
      shard-0001/ ...

Every base table is split by **hash range on a shard key** (its first column
unless overridden): rows are assigned to one of ``N`` equal ranges of a
stable 64-bit key hash (:class:`~repro.relational.partitioner.HashRangePartitioner`),
and each fragment keeps its rows in ascending original order.  Next to each
fragment, ``rowids/`` records the fragment's **original row indices**, so a
gather can reconstruct the unsharded table bit-exactly — same rows, same
order — which is what keeps scatter-gather execution identical to the
single-engine path (the merge kernels are input-order-sensitive).

Each shard directory is an ordinary engine snapshot: ``Engine.open_shard``
(or plain ``Engine.open`` on the subdirectory) boots a fully functional
shard-local engine in milliseconds, memmap-backed.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import StorageError
from repro.relational.column import Column, DataType
from repro.relational.partitioner import HashRangePartitioner
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.storage.format import ensure_directory, read_manifest, require_directory, write_manifest
from repro.storage.snapshot import open_relation, save_relation

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import Engine

SHARDS_KIND = "engine-shards"

_ROW_SCHEMA = Schema([Field("row", DataType.INT)])


def _row_relation(indices: np.ndarray) -> Relation:
    return Relation(_ROW_SCHEMA, [Column(np.asarray(indices, dtype=np.int64), DataType.INT)])


def shard_directory_name(index: int) -> str:
    return f"shard-{index:04d}"


class ShardMap:
    """The parsed top-level manifest of a partitioned snapshot, versioned.

    Beyond the manifest fields, a shard map carries a serving **epoch** — a
    monotonic version number for online reconfiguration.  FORMAT_VERSION 2
    snapshots know nothing about epochs; they load at epoch 0 unchanged,
    and :class:`~repro.serving.blueprint.BlueprintManager` stamps successor
    layouts via :meth:`at_epoch` when it swaps them in.  All shard-routing
    questions go through the accessors here (:meth:`shards`,
    :meth:`shard_for`, :meth:`shard_directory`), so an atomic layout swap
    has exactly one choke point.
    """

    def __init__(self, path: Path, manifest: dict[str, Any], *, epoch: int = 0) -> None:
        self.path = Path(path)
        self.epoch = int(epoch)
        self.num_shards = int(manifest["shards"])
        self.partitioner = dict(manifest["partitioner"])
        self.shard_keys: dict[str, str] = {
            entry["name"]: entry["key"] for entry in manifest["tables"]
        }
        self.rowid_directories: dict[str, str] = {
            entry["name"]: entry["rowids"] for entry in manifest["tables"]
        }
        self.store_rowids: str = manifest["store_rowids"]
        directories = manifest["shard_directories"]
        if len(directories) != self.num_shards:
            raise StorageError(
                f"shard map lists {len(directories)} shard directories for "
                f"{self.num_shards} shards",
                str(self.path),
            )
        self.shard_directories = [self.path / name for name in directories]
        self._manifest = dict(manifest)

    @property
    def table_names(self) -> list[str]:
        return sorted(self.shard_keys)

    def is_partitioned(self, table: str) -> bool:
        return table in self.shard_keys

    # -- the routing accessor API ------------------------------------------------

    def shards(self) -> list[int]:
        """Every shard index, in shard order."""
        return list(range(self.num_shards))

    def shard_directory(self, shard: int) -> Path:
        """The snapshot directory of shard ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise StorageError(
                f"shard index {shard} out of range for {self.num_shards} shards",
                str(self.path),
            )
        return self.shard_directories[shard]

    def shard_for(self, key: Any) -> int:
        """The shard holding rows whose shard-key value is ``key``.

        Uses the manifest's partitioner (stable FNV-1a hash ranges), so the
        answer agrees with how :func:`save_sharded_engine` placed the rows —
        in every process, on every host.
        """
        if self.partitioner.get("name") != HashRangePartitioner.name:
            raise StorageError(
                f"unknown partitioner {self.partitioner.get('name')!r}",
                str(self.path),
            )
        from repro.relational.partitioner import fnv1a_64

        hashes = np.asarray([fnv1a_64(str(key))], dtype=np.uint64)
        return int(HashRangePartitioner(self.num_shards).shard_of_hashes(hashes)[0])

    def at_epoch(self, epoch: int) -> "ShardMap":
        """This layout stamped with serving ``epoch`` (monotonic; enforced)."""
        if epoch < self.epoch:
            raise StorageError(
                f"epoch must be monotonic: {epoch} < current {self.epoch}",
                str(self.path),
            )
        return ShardMap(self.path, self._manifest, epoch=epoch)

    def with_layout(self, shards: int, out: str | Path) -> "ShardMap":
        """Materialize this snapshot's data as an ``shards``-shard layout.

        Builds the new partitioned snapshot under ``out`` from the current
        (immutable) one — the background half of an online reshard — and
        returns its shard map stamped at ``epoch + 1``, ready for an atomic
        swap.  The source layout is never touched.
        """
        from repro.engine import Engine

        builder = Engine.open_sharded(self.path)
        try:
            # carry the source layout's shard keys forward so a reshard
            # repartitions on the same columns the operator chose originally
            path = builder.save(out, shards=shards, shard_keys=dict(self.shard_keys))
        finally:
            builder.close()
        return read_shard_map(path).at_epoch(self.epoch + 1)


class ShardRowids:
    """Lazy per-table original-row-index arrays of one shard."""

    def __init__(self, shard_directory: Path, directories: dict[str, str], store_rowids: str) -> None:
        self._directory = Path(shard_directory)
        self._directories = directories
        self._store_rowids = store_rowids
        self._cache: dict[str, np.ndarray] = {}

    def _load(self, relative: str) -> np.ndarray:
        relation = open_relation(self._directory / relative, mmap=True)
        return np.asarray(relation.column("row").values, dtype=np.int64)

    def get(self, table: str) -> np.ndarray:
        rows = self._cache.get(table)
        if rows is None:
            try:
                relative = self._directories[table]
            except KeyError:
                raise StorageError(
                    f"table {table!r} is not partitioned", str(self._directory)
                ) from None
            rows = self._load(relative)
            self._cache[table] = rows
        return rows

    def get_store(self) -> np.ndarray:
        """Original triple-list indices of this shard's triples."""
        rows = self._cache.get("__store__")
        if rows is None:
            rows = self._load(self._store_rowids)
            self._cache["__store__"] = rows
        return rows


def _default_shard_key(relation: Relation) -> str:
    return relation.schema.names[0]


def _split_warm_statistics(
    engine: "Engine", table_indices: dict[str, list[np.ndarray]]
) -> dict[tuple, list]:
    """Split every saveable warm searcher's statistics by the docs partition.

    Returns ``{searcher_key: [per-shard CollectionStatistics]}`` for searchers
    whose docs source is a partitioned base table (the only ones the engine
    snapshot format persists: default model, no expander).
    """
    from repro.ir.statistics import split_statistics

    pieces: dict[tuple, list] = {}
    for key, searcher in engine._search_engines.items():
        table, _pipeline, model_key, expander_key, _id_column, _text_column = key
        if model_key != "default" or expander_key is not None:
            continue
        if not searcher.statistics_available or table not in table_indices:
            continue
        pieces[key] = split_statistics(searcher.statistics, table_indices[table])
    return pieces


def save_sharded_engine(
    engine: "Engine",
    path: str | Path,
    *,
    shards: int,
    shard_keys: dict[str, str] | None = None,
) -> Path:
    """Write ``engine`` as an ``N``-shard partitioned snapshot under ``path``."""
    from repro.engine import Engine
    from repro.storage.engine_io import _compiled_sources, save_engine
    from repro.triples.partitioning import make_storage

    if shards < 1:
        raise StorageError(f"shard count must be >= 1, got {shards}")
    directory = ensure_directory(Path(path))
    partitioner = HashRangePartitioner(shards)
    shard_keys = dict(shard_keys or {})

    engine.store._ensure_loaded()
    database = engine.database

    # per-table hash-range partitions (ascending original-row indices)
    table_names = database.table_names()
    table_indices: dict[str, list[np.ndarray]] = {}
    resolved_keys: dict[str, str] = {}
    for name in table_names:
        relation = database.table(name)
        key = shard_keys.get(name, _default_shard_key(relation))
        if key not in relation.schema:
            raise StorageError(
                f"shard key {key!r} is not a column of table {name!r} "
                f"(columns: {relation.schema.names})",
                str(directory),
            )
        resolved_keys[name] = key
        table_indices[name] = partitioner.partition_indices(relation, key)

    # the triple list splits by subject — the same key the subject-leading
    # partition tables use, so a shard's list matches its tables
    triples = engine.store._triples
    subject_relation = Relation(
        Schema([Field("subject", DataType.STRING)]),
        [Column([triple.subject for triple in triples], DataType.STRING)],
    )
    triple_indices = partitioner.partition_indices(subject_relation, "subject")

    statistics_pieces = _split_warm_statistics(engine, table_indices)
    storage_state = engine.store.storage.snapshot_state()
    storage_name = engine.store.storage.name
    compiled_sources = _compiled_sources(engine)

    tables_payload = []
    rowid_directories: dict[str, str] = {}
    for position, name in enumerate(table_names):
        rowid_directories[name] = f"rowids/t{position:04d}"
        tables_payload.append(
            {"name": name, "key": resolved_keys[name], "rowids": rowid_directories[name]}
        )
    store_rowids = "rowids/store"

    shard_directories = []
    for shard in range(shards):
        shard_dir = directory / shard_directory_name(shard)
        shard_directories.append(shard_dir.name)

        shard_engine = Engine(
            triples_table=engine.triples_table, language=engine.language
        )
        for name in table_names:
            fragment = database.table(name).take(table_indices[name][shard])
            shard_engine.database.create_table(name, fragment)
        storage = make_storage(storage_name)
        storage.restore_state(dict(storage_state))
        shard_engine.store.storage = storage
        shard_engine.store._triples_list = [triples[i] for i in triple_indices[shard]]
        shard_engine.store._loaded = True
        # re-record the source engine's compiled SpinQL programs, so shard
        # snapshots (and open_sharded, which warms from shard 0) keep the
        # plain layout's warm-plan-cache behavior
        for entry in compiled_sources:
            shard_engine._compile_spinql(entry["source"], frozenset(entry["parameters"]))
        for key, pieces in statistics_pieces.items():
            table, pipeline, _model, _expander, id_column, text_column = key
            piece = pieces[shard]
            searcher = shard_engine._search_engine(
                table,
                model=None,
                pipeline=pipeline,
                expander=None,
                id_column=id_column,
                text_column=text_column,
            )
            searcher.adopt_statistics_loader(lambda piece=piece: piece)

        save_engine(shard_engine, shard_dir)
        for name in table_names:
            save_relation(
                _row_relation(table_indices[name][shard]),
                shard_dir / rowid_directories[name],
            )
        save_relation(_row_relation(triple_indices[shard]), shard_dir / store_rowids)

    write_manifest(
        directory,
        SHARDS_KIND,
        {
            "shards": shards,
            "partitioner": partitioner.describe(),
            "tables": tables_payload,
            "store_rowids": store_rowids,
            "shard_directories": shard_directories,
        },
    )
    return directory


def read_shard_map(path: str | Path) -> ShardMap:
    """Read and validate the top-level shard map of a partitioned snapshot."""
    directory = require_directory(Path(path), what="sharded snapshot")
    manifest = read_manifest(directory, SHARDS_KIND)
    try:
        return ShardMap(directory, manifest)
    except (KeyError, TypeError, ValueError) as error:
        raise StorageError(
            f"shard map manifest is malformed: {error!r}", str(directory)
        ) from error


def is_sharded_snapshot(path: str | Path) -> bool:
    """True when ``path`` holds a partitioned (shard-map) snapshot."""
    directory = Path(path)
    if not directory.is_dir():
        return False
    try:
        read_manifest(directory, SHARDS_KIND)
    except StorageError:
        return False
    return True


def open_shard(path: str | Path, shard: int, *, mmap: bool = True) -> "Engine":
    """Open shard ``shard`` of a partitioned snapshot as a standalone engine."""
    from repro.engine import Engine

    shard_map = read_shard_map(path)
    if not 0 <= shard < shard_map.num_shards:
        raise StorageError(
            f"shard index {shard} out of range for {shard_map.num_shards} shards",
            str(path),
        )
    return Engine.open(shard_map.shard_directories[shard], mmap=mmap)


def shard_rowids(shard_map: ShardMap, shard: int) -> ShardRowids:
    """The lazy original-row-index arrays of shard ``shard``."""
    return ShardRowids(
        shard_map.shard_directories[shard],
        shard_map.rowid_directories,
        shard_map.store_rowids,
    )
