"""Emergent schema detection (Pham & Boncz).

Section 2.2 mentions, as an alternative to explicit partitioning, *"the
detection of emergent schemas, a data-driven technique to find a relational
schema that is considered optimal for a given graph, thus eliminating many
join operations"*.  This module implements the core of that idea:

1. group subjects by their **characteristic set** — the set of properties
   they carry;
2. merge rare characteristic sets into their closest frequent superset (so a
   handful of "emergent tables" covers most of the data);
3. emit one wide relation per emergent table, with one column per property
   (multi-valued properties keep their first value; the remainder stay in a
   residual triples table).

The ablation benchmark A1 compares querying an emergent table against the
equivalent triple self-joins.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import TripleStoreError
from repro.pra.relation import PROBABILITY_COLUMN
from repro.relational.column import DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.triples.triple_store import Triple


@dataclass
class CharacteristicSet:
    """A set of properties shared by a group of subjects."""

    properties: frozenset[str]
    subjects: list[str] = field(default_factory=list)

    @property
    def support(self) -> int:
        """Number of subjects exhibiting exactly this property set."""
        return len(self.subjects)

    def covers(self, other: "CharacteristicSet") -> bool:
        """True if this set's properties are a superset of ``other``'s."""
        return self.properties >= other.properties


@dataclass
class EmergentTable:
    """One table of the emergent schema: a characteristic set plus its relation."""

    name: str
    properties: tuple[str, ...]
    relation: Relation
    subjects: tuple[str, ...]


class EmergentSchemaDetector:
    """Detects an emergent relational schema from a set of triples."""

    def __init__(self, *, min_support: int = 2, max_tables: int | None = None):
        if min_support < 1:
            raise TripleStoreError("min_support must be at least 1")
        self.min_support = min_support
        self.max_tables = max_tables

    # -- characteristic sets -------------------------------------------------------------

    def characteristic_sets(self, triples: Sequence["Triple"]) -> list[CharacteristicSet]:
        """Group subjects by the exact set of properties they carry."""
        subject_properties: dict[str, set[str]] = defaultdict(set)
        for triple in triples:
            subject_properties[triple.subject].add(triple.property)
        grouped: dict[frozenset[str], list[str]] = defaultdict(list)
        for subject, properties in subject_properties.items():
            grouped[frozenset(properties)].append(subject)
        sets = [
            CharacteristicSet(properties=properties, subjects=sorted(subjects))
            for properties, subjects in grouped.items()
        ]
        sets.sort(key=lambda cset: (-cset.support, sorted(cset.properties)))
        return sets

    def merge_rare_sets(self, sets: list[CharacteristicSet]) -> list[CharacteristicSet]:
        """Fold characteristic sets below ``min_support`` into a covering frequent set."""
        frequent = [cset for cset in sets if cset.support >= self.min_support]
        rare = [cset for cset in sets if cset.support < self.min_support]
        if self.max_tables is not None:
            overflow = frequent[self.max_tables :]
            frequent = frequent[: self.max_tables]
            rare.extend(overflow)
        merged: dict[frozenset[str], CharacteristicSet] = {
            cset.properties: CharacteristicSet(cset.properties, list(cset.subjects))
            for cset in frequent
        }
        leftovers: list[CharacteristicSet] = []
        for cset in rare:
            host = None
            for candidate in merged.values():
                if candidate.covers(cset):
                    host = candidate
                    break
            if host is not None:
                host.subjects.extend(cset.subjects)
            else:
                leftovers.append(cset)
        result = list(merged.values())
        result.extend(leftovers)
        result.sort(key=lambda cset: (-cset.support, sorted(cset.properties)))
        return result

    # -- schema emission ----------------------------------------------------------------------

    def detect(self, triples: Sequence["Triple"]) -> list[EmergentTable]:
        """Return the emergent tables of the given triples."""
        sets = self.merge_rare_sets(self.characteristic_sets(triples))
        # index triples per subject/property, keeping the first value and its probability
        values: dict[tuple[str, str], tuple[str, float]] = {}
        for triple in triples:
            key = (triple.subject, triple.property)
            if key not in values:
                values[key] = (str(triple.object), triple.probability)

        tables: list[EmergentTable] = []
        for index, cset in enumerate(sets):
            properties = tuple(sorted(cset.properties))
            fields = [Field("subject", DataType.STRING)]
            fields.extend(Field(name, DataType.STRING) for name in properties)
            fields.append(Field(PROBABILITY_COLUMN, DataType.FLOAT))
            rows = []
            for subject in cset.subjects:
                row: list[object] = [subject]
                probability = 1.0
                complete = True
                for name in properties:
                    entry = values.get((subject, name))
                    if entry is None:
                        complete = False
                        row.append("")
                    else:
                        row.append(entry[0])
                        probability *= entry[1]
                if not complete and len(properties) > 0:
                    # subjects merged into a superset table may miss some columns
                    pass
                row.append(probability)
                rows.append(tuple(row))
            relation = Relation.from_rows(Schema(fields), rows)
            tables.append(
                EmergentTable(
                    name=f"emergent_{index}",
                    properties=properties,
                    relation=relation,
                    subjects=tuple(cset.subjects),
                )
            )
        return tables

    def coverage(self, triples: Sequence["Triple"], tables: list[EmergentTable]) -> float:
        """Fraction of subjects covered by the emergent tables (quality metric)."""
        covered = set()
        for table in tables:
            covered.update(table.subjects)
        subjects = {triple.subject for triple in triples}
        if not subjects:
            return 1.0
        return len(covered & subjects) / len(subjects)

    def property_frequencies(self, triples: Sequence["Triple"]) -> Counter:
        """Frequency of each property (diagnostic for partitioning decisions)."""
        return Counter(triple.property for triple in triples)
