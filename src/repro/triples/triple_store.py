"""The probabilistic triple store.

Triples are uncertain events ``(subject, property, object, p)`` (Section 2.3).
The store keeps them in the relational engine through a pluggable
:class:`~repro.triples.partitioning.StorageStrategy` and offers:

* pattern matching (``match``) returning probabilistic relations,
* convenience accessors used by the strategy blocks (``select_property``,
  ``subjects_of_type``, ``objects_of``),
* registration of SQL-level views such as the paper's ``docs`` view that
  joins category filtering with description extraction.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import TripleStoreError
from repro.pra.relation import PROBABILITY_COLUMN, ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.triples.partitioning import SingleTableStorage, StorageStrategy

#: well-known property used to type resources, as in ``(lot23, type, lot)``
TYPE_PROPERTY = "type"


@dataclass(frozen=True)
class Triple:
    """One probabilistic triple."""

    subject: str
    property: str
    object: Any
    probability: float = 1.0

    def as_row(self) -> tuple[str, str, Any, float]:
        return (self.subject, self.property, self.object, self.probability)


TRIPLE_SCHEMA = Schema(
    [
        Field("subject", DataType.STRING),
        Field("property", DataType.STRING),
        Field("object", DataType.STRING),
        Field(PROBABILITY_COLUMN, DataType.FLOAT),
    ]
)


class TripleStore:
    """A probabilistic triple store backed by the relational engine."""

    def __init__(
        self,
        database: Database | None = None,
        *,
        storage: StorageStrategy | None = None,
        table_name: str = "triples",
    ):
        self.database = database if database is not None else Database()
        self.table_name = table_name
        self.storage = storage if storage is not None else SingleTableStorage(table_name)
        self._triples_list: list[Triple] | None = []
        self._triples_loader: Callable[[], list[Triple]] | None = None
        self._triples_lock = threading.Lock()
        self._loaded = False

    @property
    def _triples(self) -> list[Triple]:
        """The buffered triples, hydrated lazily when backed by a snapshot.

        The loader is cleared only after it succeeds, so a failed first
        access raises again on retry instead of silently yielding an empty
        store, and the lock keeps concurrent first accesses from observing
        the half-hydrated state.
        """
        triples = self._triples_list
        if triples is not None:
            return triples
        with self._triples_lock:
            if self._triples_list is None:
                loader = self._triples_loader
                self._triples_list = loader() if loader is not None else []
                self._triples_loader = None
            return self._triples_list

    def adopt_snapshot(self, loader: Callable[[], list[Triple]]) -> None:
        """Mark the store as loaded from a snapshot whose tables are in place.

        ``loader`` reproduces the triple list on first access (properties,
        ``num_triples``, re-materialisation); pattern matching never needs it
        because the storage strategy's partition tables already exist in the
        database.
        """
        self._triples_list = None
        self._triples_loader = loader
        self._loaded = True

    # -- loading ----------------------------------------------------------------------

    def add(self, subject: str, property_name: str, obj: Any, probability: float = 1.0) -> None:
        """Buffer a single triple (call :meth:`load` to (re)materialise storage)."""
        self._triples.append(Triple(subject, property_name, obj, probability))
        self._loaded = False

    def add_all(self, triples: Iterable[Triple | tuple]) -> None:
        """Buffer many triples; tuples of length 3 or 4 are accepted."""
        for triple in triples:
            if isinstance(triple, Triple):
                self._triples.append(triple)
            else:
                values = tuple(triple)
                if len(values) == 3:
                    self._triples.append(Triple(values[0], values[1], values[2]))
                elif len(values) == 4:
                    self._triples.append(Triple(values[0], values[1], values[2], float(values[3])))
                else:
                    raise TripleStoreError(
                        f"triples must have 3 or 4 components, got {len(values)}"
                    )
        self._loaded = False

    def load(self) -> None:
        """Materialise the buffered triples into the storage strategy's tables."""
        self.storage.load(self.database, self._triples)
        self._loaded = True

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # -- statistics ---------------------------------------------------------------------

    @property
    def num_triples(self) -> int:
        return len(self._triples)

    def properties(self) -> list[str]:
        """The distinct property names present in the store."""
        return sorted({triple.property for triple in self._triples})

    def subjects(self) -> list[str]:
        return sorted({triple.subject for triple in self._triples})

    # -- pattern matching ------------------------------------------------------------------

    def match(
        self,
        subject: str | None = None,
        property_name: str | None = None,
        obj: Any | None = None,
    ) -> ProbabilisticRelation:
        """Return all triples matching the given (possibly wildcarded) pattern."""
        self._ensure_loaded()
        return self.storage.match(self.database, subject, property_name, obj)

    def select_property(self, property_name: str) -> ProbabilisticRelation:
        """Return ``(subject, object, p)`` for one property (a vertical partition)."""
        matched = self.match(property_name=property_name)
        relation = matched.relation.select_columns(["subject", "object", PROBABILITY_COLUMN])
        return ProbabilisticRelation(relation, validate=False)

    def subjects_of_type(self, type_name: str) -> ProbabilisticRelation:
        """Return ``(subject, p)`` for resources with ``(subject, type, type_name)``."""
        matched = self.match(property_name=TYPE_PROPERTY, obj=type_name)
        relation = matched.relation.select_columns(["subject", PROBABILITY_COLUMN])
        return ProbabilisticRelation(relation, validate=False)

    def objects_of(self, subject: str, property_name: str) -> list[Any]:
        """Return the objects of all ``(subject, property, ?)`` triples."""
        matched = self.match(subject=subject, property_name=property_name)
        return matched.relation.column("object").to_list()

    # -- persistence ---------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Snapshot the triple source plus storage layout (see :mod:`repro.storage`).

        The partition tables themselves belong to :attr:`database`; snapshot
        that too (or use :meth:`repro.engine.Engine.save`, which does both).
        """
        from repro.storage.snapshot import save_triple_store

        self._ensure_loaded()
        return save_triple_store(self, path)

    @classmethod
    def open(cls, path: str | Path, database: Database, *, mmap: bool = True) -> "TripleStore":
        """Rebuild a store over a ``database`` opened from the same snapshot."""
        from repro.storage.snapshot import restore_triple_store

        return restore_triple_store(path, database, mmap=mmap)

    # -- relational integration ----------------------------------------------------------------

    def as_relation(self) -> Relation:
        """Return every triple as a single ``(subject, property, object, p)`` relation."""
        rows = [triple.as_row() for triple in self._triples]
        normalised = [(s, p, str(o), prob) for s, p, o, prob in rows]
        return Relation.from_rows(TRIPLE_SCHEMA, normalised)

    def register_docs_view(
        self,
        view_name: str,
        *,
        filter_property: str,
        filter_value: str,
        text_property: str,
    ) -> None:
        """Register the paper's ``docs`` view (Section 2.2/2.3) in the database.

        The view joins the triples table with itself: subjects whose
        ``filter_property`` equals ``filter_value`` paired with the object of
        their ``text_property``, with probabilities multiplied (independent
        join), producing ``(docID, data, p)``.
        """
        self._ensure_loaded()
        filtered = self.match(property_name=filter_property, obj=filter_value)
        described = self.match(property_name=text_property)
        # probabilistic self-join on subject, then project (docID, data)
        from repro.pra import operators as pra_operators
        from repro.pra.assumptions import Assumption

        joined = pra_operators.join(
            filtered, described, [("subject", "subject")], Assumption.INDEPENDENT
        )
        value_columns = joined.value_columns
        # the right-hand object column carries the text
        right_object = [name for name in value_columns if name.startswith("object")][-1]
        docs = pra_operators.project(
            joined,
            [value_columns[0], right_object],
            Assumption.INDEPENDENT,
            output_names=["docID", "data"],
        )
        self.database.create_table(view_name, docs.relation, replace=True)

    def docs_relation(
        self,
        *,
        filter_property: str,
        filter_value: str,
        text_property: str,
    ) -> ProbabilisticRelation:
        """Return the docs relation of :meth:`register_docs_view` without registering it."""
        temporary_name = "__docs_tmp__"
        self.register_docs_view(
            temporary_name,
            filter_property=filter_property,
            filter_value=filter_value,
            text_property=text_property,
        )
        relation = self.database.table(temporary_name)
        self.database.drop_table(temporary_name)
        return ProbabilisticRelation(relation, validate=False)
