"""Graph traversal over the triple store with probability propagation.

The auction strategy of Section 3 traverses the ``hasAuction`` property
forward (lot → auction) and backward (auction → lot), with the probabilities
of the traversed tuples propagating transparently: a lot reached through a
ranked auction inherits a probability that depends on the auction's.  The
:class:`GraphNavigator` implements those steps on top of the PRA join.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import TripleStoreError
from repro.pra import operators as pra_operators
from repro.pra.assumptions import Assumption
from repro.pra.relation import PROBABILITY_COLUMN, ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.triples.triple_store import TripleStore


def _node_relation(nodes: ProbabilisticRelation | Sequence[str]) -> ProbabilisticRelation:
    """Normalise the input node set into a single-column ``(node, p)`` relation."""
    if isinstance(nodes, ProbabilisticRelation):
        value_columns = nodes.value_columns
        if len(value_columns) != 1:
            raise TripleStoreError(
                f"node relations must have exactly one value column, got {value_columns}"
            )
        relation = nodes.relation.rename({value_columns[0]: "node"})
        return ProbabilisticRelation(relation, validate=False)
    schema = Schema([Field("node", DataType.STRING), Field(PROBABILITY_COLUMN, DataType.FLOAT)])
    rows = [(node, 1.0) for node in nodes]
    return ProbabilisticRelation(Relation.from_rows(schema, rows), validate=False)


class GraphNavigator:
    """Traversal steps over a :class:`~repro.triples.triple_store.TripleStore`."""

    def __init__(self, store: TripleStore, *, assumption: Assumption = Assumption.INDEPENDENT):
        self.store = store
        self.assumption = assumption

    # -- single-step traversals --------------------------------------------------------------

    def traverse(
        self,
        nodes: ProbabilisticRelation | Sequence[str],
        property_name: str,
        *,
        backward: bool = False,
        merge: Assumption | None = None,
    ) -> ProbabilisticRelation:
        """Follow ``property_name`` from the given nodes (forward: subject → object).

        The result is a ``(node, p)`` relation of reached nodes whose
        probabilities are the product of the start node's probability and the
        traversed triple's probability (independent join), merged over
        multiple paths with ``merge`` (defaults to the navigator's assumption).
        """
        start = _node_relation(nodes)
        edges = self.store.select_property(property_name)
        if backward:
            edges_relation = edges.relation.rename({"subject": "target", "object": "source"})
        else:
            edges_relation = edges.relation.rename({"subject": "source", "object": "target"})
        edges_relation = edges_relation.select_columns(["source", "target", PROBABILITY_COLUMN])
        edges_prob = ProbabilisticRelation(edges_relation, validate=False)

        joined = pra_operators.join(
            start, edges_prob, [("node", "source")], Assumption.INDEPENDENT
        )
        # keep the reached node (the 'target' column) and merge alternative paths
        target_column = [name for name in joined.value_columns if name.startswith("target")][0]
        merged = pra_operators.project(
            joined,
            [target_column],
            merge if merge is not None else self.assumption,
            output_names=["node"],
        )
        return merged

    def neighbors(self, node: str, property_name: str, *, backward: bool = False) -> list[str]:
        """Return the nodes reachable from ``node`` over one property edge."""
        reached = self.traverse([node], property_name, backward=backward)
        return reached.relation.column("node").to_list()

    # -- multi-step traversal ----------------------------------------------------------------------

    def traverse_path(
        self,
        nodes: ProbabilisticRelation | Sequence[str],
        path: Sequence[tuple[str, bool]],
    ) -> ProbabilisticRelation:
        """Follow a path of ``(property, backward)`` steps, propagating probabilities."""
        current = _node_relation(nodes)
        for property_name, backward in path:
            current = self.traverse(current, property_name, backward=backward)
        return current
