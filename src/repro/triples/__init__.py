"""The flexible data model: a triple store on the relational engine.

Section 2.2 of the paper stores heterogeneous structured data as semantic
triples ``(subject, property, object)`` in the same relational engine used
for IR, querying them through plain SQL.  This package implements that
design:

* :mod:`repro.triples.triple_store` — the store itself, with probabilistic
  triples (Section 2.3 appends ``p`` to triples too) and pattern matching;
* :mod:`repro.triples.partitioning` — the storage strategies the paper
  discusses: a single triples table, vertical partitioning by property
  (Abadi et al.), and the data-driven partitioning by physical object type
  that Spinque applies;
* :mod:`repro.triples.emergent_schema` — characteristic-set based emergent
  schema detection (Pham & Boncz), the alternative the paper mentions;
* :mod:`repro.triples.graph` — graph traversal with probability propagation
  (the *traverse hasAuction* steps of Section 3);
* :mod:`repro.triples.loader` — a simple line-oriented loader with typed
  literal detection.
"""

from repro.triples.emergent_schema import CharacteristicSet, EmergentSchemaDetector
from repro.triples.graph import GraphNavigator
from repro.triples.loader import parse_triple_line, load_triples
from repro.triples.partitioning import (
    PropertyPartitionedStorage,
    SingleTableStorage,
    StorageStrategy,
    TypePartitionedStorage,
)
from repro.triples.triple_store import Triple, TripleStore

__all__ = [
    "CharacteristicSet",
    "EmergentSchemaDetector",
    "GraphNavigator",
    "PropertyPartitionedStorage",
    "SingleTableStorage",
    "StorageStrategy",
    "Triple",
    "TripleStore",
    "TypePartitionedStorage",
    "load_triples",
    "parse_triple_line",
]
