"""A simple line-oriented triple loader with typed literal detection.

The format is deliberately minimal (the paper feeds data into the system
"with almost no pre-processing"): one triple per line, tab- or
whitespace-separated ``subject property object [probability]``.  Objects
that parse as integers or floats keep their numeric type, which is what the
type-partitioned storage strategy relies on.  Lines starting with ``#`` and
blank lines are ignored.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path
from typing import Any

from repro.errors import TripleStoreError
from repro.triples.triple_store import Triple


def _parse_object(text: str) -> Any:
    """Return the typed value of an object literal."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    return text


def parse_triple_line(line: str, *, separator: str | None = None) -> Triple | None:
    """Parse one line into a :class:`Triple` (or ``None`` for comments/blank lines)."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if separator is not None:
        parts = [part.strip() for part in stripped.split(separator)]
    else:
        parts = stripped.split(None, 3)
    if len(parts) < 3:
        raise TripleStoreError(f"cannot parse triple line: {line!r}")
    subject, property_name = parts[0], parts[1]
    if len(parts) == 3:
        return Triple(subject, property_name, _parse_object(parts[2]))
    # the fourth field is a probability if it parses as a float in [0, 1],
    # otherwise it is part of the object (free text such as a description)
    remainder = parts[3].strip()
    try:
        probability = float(remainder)
        if 0.0 <= probability <= 1.0:
            return Triple(subject, property_name, _parse_object(parts[2]), probability)
    except ValueError:
        pass
    return Triple(subject, property_name, _parse_object(f"{parts[2]} {remainder}"))


def load_triples(
    source: str | Path | Iterable[str],
    *,
    separator: str | None = None,
) -> list[Triple]:
    """Load triples from a file path or an iterable of lines."""
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    triples: list[Triple] = []
    for line in lines:
        triple = parse_triple_line(line, separator=separator)
        if triple is not None:
            triples.append(triple)
    return triples
