"""Vertical-partitioning strategies for the triple store.

Section 2.2 of the paper discusses three ways of laying triples out in the
relational engine:

* a **single triples table**, maximally flexible but requiring self-joins
  whose cost grows with the table (our :class:`SingleTableStorage`);
* **vertical partitioning by property** (Abadi et al., VLDB 2007): one
  two-column table per property, fast for property lookups but less scalable
  when the number of properties is high (Sidirourgos et al., VLDB 2008) —
  :class:`PropertyPartitionedStorage`;
* the **data-driven partitioning by physical object type** that Spinque
  always applies (integers, floats and strings in separate tables) —
  :class:`TypePartitionedStorage`.

All strategies implement the same interface so the partitioning benchmark
(E3) can swap them under an identical query workload.  The *on-demand*
query-driven materialization the paper ultimately relies on is orthogonal:
it is provided by the engine's :class:`~repro.relational.cache.MaterializationCache`
and measured in the same benchmark.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro.errors import PartitioningError
from repro.pra.relation import PROBABILITY_COLUMN, ProbabilisticRelation
from repro.relational.algebra import Scan, Select
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.expressions import Expression, col, lit
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.triples.triple_store import Triple


def _triple_schema(object_type: DataType = DataType.STRING) -> Schema:
    return Schema(
        [
            Field("subject", DataType.STRING),
            Field("property", DataType.STRING),
            Field("object", object_type),
            Field(PROBABILITY_COLUMN, DataType.FLOAT),
        ]
    )


def _pattern_predicate(
    subject: str | None, property_name: str | None, obj: Any | None
) -> Expression | None:
    """Build the conjunctive predicate for a triple pattern (None = no filter)."""
    predicate: Expression | None = None
    def conjoin(existing: Expression | None, clause: Expression) -> Expression:
        if existing is None:
            return clause
        return existing.and_(clause)

    if subject is not None:
        predicate = conjoin(predicate, col("subject").eq(lit(subject)))
    if property_name is not None:
        predicate = conjoin(predicate, col("property").eq(lit(property_name)))
    if obj is not None:
        predicate = conjoin(predicate, col("object").eq(lit(obj)))
    return predicate


class StorageStrategy:
    """Interface of a triple storage layout."""

    name = "abstract"

    def load(self, database: Database, triples: Sequence["Triple"]) -> None:
        """(Re)materialise ``triples`` into the database tables of this layout."""
        raise NotImplementedError

    def match(
        self,
        database: Database,
        subject: str | None,
        property_name: str | None,
        obj: Any | None,
    ) -> ProbabilisticRelation:
        """Return the triples matching a pattern as ``(subject, property, object, p)``."""
        raise NotImplementedError

    def table_names(self, database: Database) -> list[str]:
        """The base tables this layout created (for size accounting in benchmarks)."""
        raise NotImplementedError

    def snapshot_state(self) -> dict[str, Any]:
        """JSON-serializable layout state for snapshots (see :mod:`repro.storage`)."""
        raise NotImplementedError

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore the layout state saved by :meth:`snapshot_state`.

        After restoring, :meth:`match` works against a database whose
        partition tables were loaded from the same snapshot, without
        re-running :meth:`load`.
        """
        raise NotImplementedError


class SingleTableStorage(StorageStrategy):
    """All triples in one ``(subject, property, object, p)`` table."""

    name = "single-table"

    def __init__(self, table_name: str = "triples"):
        self.table_name = table_name

    def load(self, database: Database, triples: Sequence["Triple"]) -> None:
        rows = [(t.subject, t.property, str(t.object), t.probability) for t in triples]
        database.create_table(
            self.table_name, Relation.from_rows(_triple_schema(), rows), replace=True
        )

    def match(
        self,
        database: Database,
        subject: str | None,
        property_name: str | None,
        obj: Any | None,
    ) -> ProbabilisticRelation:
        plan = Scan(self.table_name)
        predicate = _pattern_predicate(
            subject, property_name, str(obj) if obj is not None else None
        )
        if predicate is not None:
            plan = Select(plan, predicate)
        return ProbabilisticRelation(database.execute(plan), validate=False)

    def table_names(self, database: Database) -> list[str]:
        return [self.table_name]

    def snapshot_state(self) -> dict[str, Any]:
        return {"table_name": self.table_name}

    def restore_state(self, state: dict[str, Any]) -> None:
        self.table_name = state["table_name"]


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


class PropertyPartitionedStorage(StorageStrategy):
    """Abadi-style vertical partitioning: one table per property."""

    name = "property-partitioned"

    def __init__(self, prefix: str = "prop_"):
        self.prefix = prefix
        self._properties: list[str] = []

    def _table_for(self, property_name: str) -> str:
        return f"{self.prefix}{_sanitize(property_name)}"

    def load(self, database: Database, triples: Sequence["Triple"]) -> None:
        partitions: dict[str, list[tuple[str, str, str, float]]] = {}
        for triple in triples:
            partitions.setdefault(triple.property, []).append(
                (triple.subject, triple.property, str(triple.object), triple.probability)
            )
        self._properties = sorted(partitions)
        for property_name, rows in partitions.items():
            database.create_table(
                self._table_for(property_name),
                Relation.from_rows(_triple_schema(), rows),
                replace=True,
            )

    def match(
        self,
        database: Database,
        subject: str | None,
        property_name: str | None,
        obj: Any | None,
    ) -> ProbabilisticRelation:
        predicate = _pattern_predicate(subject, None, str(obj) if obj is not None else None)
        if property_name is not None:
            if property_name not in self._properties:
                return ProbabilisticRelation(
                    Relation.empty(_triple_schema()), validate=False
                )
            plan = Scan(self._table_for(property_name))
            if predicate is not None:
                plan = Select(plan, predicate)
            return ProbabilisticRelation(database.execute(plan), validate=False)
        # no property bound: scan every partition and concatenate
        result: Relation | None = None
        for name in self._properties:
            plan = Scan(self._table_for(name))
            if predicate is not None:
                plan = Select(plan, predicate)
            partition = database.execute(plan)
            result = partition if result is None else result.concat(partition)
        if result is None:
            result = Relation.empty(_triple_schema())
        return ProbabilisticRelation(result, validate=False)

    def table_names(self, database: Database) -> list[str]:
        return [self._table_for(name) for name in self._properties]

    def snapshot_state(self) -> dict[str, Any]:
        return {"prefix": self.prefix, "properties": list(self._properties)}

    def restore_state(self, state: dict[str, Any]) -> None:
        self.prefix = state["prefix"]
        self._properties = list(state["properties"])


class TypePartitionedStorage(StorageStrategy):
    """Spinque's data-driven partitioning by the physical type of the object.

    String, integer and float literals land in separate tables (keeping their
    native types, rather than serialising everything into strings); pattern
    matching consults only the partitions compatible with the bound object
    value, or all of them when the object is unbound.
    """

    name = "type-partitioned"

    def __init__(self, prefix: str = "triples_"):
        self.prefix = prefix
        self._partitions: list[DataType] = []

    _SUFFIXES = {
        DataType.STRING: "str",
        DataType.INT: "int",
        DataType.FLOAT: "float",
    }

    def _table_for(self, dtype: DataType) -> str:
        return f"{self.prefix}{self._SUFFIXES[dtype]}"

    @staticmethod
    def _object_type(value: Any) -> DataType:
        if isinstance(value, bool):
            return DataType.STRING
        if isinstance(value, int):
            return DataType.INT
        if isinstance(value, float):
            return DataType.FLOAT
        return DataType.STRING

    def load(self, database: Database, triples: Sequence["Triple"]) -> None:
        partitions: dict[DataType, list[tuple[str, str, Any, float]]] = {}
        for triple in triples:
            dtype = self._object_type(triple.object)
            value = triple.object if dtype is not DataType.STRING else str(triple.object)
            partitions.setdefault(dtype, []).append(
                (triple.subject, triple.property, value, triple.probability)
            )
        self._partitions = sorted(partitions, key=lambda dtype: dtype.value)
        for dtype, rows in partitions.items():
            database.create_table(
                self._table_for(dtype),
                Relation.from_rows(_triple_schema(dtype), rows),
                replace=True,
            )

    def match(
        self,
        database: Database,
        subject: str | None,
        property_name: str | None,
        obj: Any | None,
    ) -> ProbabilisticRelation:
        if obj is not None:
            candidate_types = [self._object_type(obj)]
        else:
            candidate_types = list(self._partitions)
        result: Relation | None = None
        for dtype in candidate_types:
            if dtype not in self._partitions:
                continue
            predicate = _pattern_predicate(
                subject,
                property_name,
                obj if dtype is not DataType.STRING or obj is None else str(obj),
            )
            plan = Scan(self._table_for(dtype))
            if predicate is not None:
                plan = Select(plan, predicate)
            partition = database.execute(plan)
            # normalise the object column to string so partitions can be concatenated
            if dtype is not DataType.STRING and partition.num_rows >= 0:
                object_column = partition.column("object").cast(DataType.STRING)
                partition = Relation(
                    _triple_schema(),
                    [
                        partition.column("subject"),
                        partition.column("property"),
                        object_column,
                        partition.column(PROBABILITY_COLUMN),
                    ],
                )
            result = partition if result is None else result.concat(partition)
        if result is None:
            result = Relation.empty(_triple_schema())
        return ProbabilisticRelation(result, validate=False)

    def table_names(self, database: Database) -> list[str]:
        return [self._table_for(dtype) for dtype in self._partitions]

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "prefix": self.prefix,
            "partitions": [dtype.value for dtype in self._partitions],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self.prefix = state["prefix"]
        self._partitions = [DataType(value) for value in state["partitions"]]


def make_storage(name: str, **options) -> StorageStrategy:
    """Factory used by benchmarks.

    Available: ``single-table``, ``property-partitioned``, ``type-partitioned``.
    """
    registry = {
        SingleTableStorage.name: SingleTableStorage,
        PropertyPartitionedStorage.name: PropertyPartitionedStorage,
        TypePartitionedStorage.name: TypePartitionedStorage,
    }
    try:
        factory = registry[name]
    except KeyError:
        raise PartitioningError(
            f"unknown storage strategy {name!r}; available: {sorted(registry)}"
        ) from None
    return factory(**options)
