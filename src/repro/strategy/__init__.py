"""Search strategies: the block-based modeling layer of Section 2.4.

A *search strategy* is a DAG of building blocks — *Select by type*, *Traverse
property*, *Extract text*, *Rank by Text BM25*, *Mix*, … — that is compiled
into probabilistic-relational-algebra plans and executed against the triple
store.  The paper models these graphically; this package provides the
equivalent programmatic API plus an ASCII/DOT renderer so the figures of the
paper (Figure 2, the toy scenario; Figure 3, the auction scenario) can be
regenerated as text.

* :mod:`repro.strategy.blocks` — the block base class, typed ports and the
  execution context;
* :mod:`repro.strategy.library` — the standard block library;
* :mod:`repro.strategy.graph` — the strategy DAG with validation and
  topological execution order;
* :mod:`repro.strategy.executor` — executes a strategy for a query;
* :mod:`repro.strategy.render` — ASCII and Graphviz DOT rendering;
* :mod:`repro.strategy.prebuilt` — the toy-products strategy of Figure 2 and
  the auction strategy of Figure 3, ready to run.
"""

from repro.strategy.blocks import Block, PortKind, StrategyContext
from repro.strategy.executor import StrategyExecutor
from repro.strategy.graph import StrategyGraph
from repro.strategy.library import (
    ExtractTextBlock,
    LimitBlock,
    MixBlock,
    QueryInputBlock,
    RankByTextBlock,
    SelectByPropertyBlock,
    SelectByTypeBlock,
    TraversePropertyBlock,
)
from repro.strategy.prebuilt import build_auction_strategy, build_toy_strategy
from repro.strategy.render import render_ascii, render_dot

__all__ = [
    "Block",
    "ExtractTextBlock",
    "LimitBlock",
    "MixBlock",
    "PortKind",
    "QueryInputBlock",
    "RankByTextBlock",
    "SelectByPropertyBlock",
    "SelectByTypeBlock",
    "StrategyContext",
    "StrategyExecutor",
    "StrategyGraph",
    "TraversePropertyBlock",
    "build_auction_strategy",
    "build_toy_strategy",
    "render_ascii",
    "render_dot",
]
