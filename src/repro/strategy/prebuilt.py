"""Pre-built strategies: the paper's Figure 2 and Figure 3.

* :func:`build_toy_strategy` — *"rank toy products by their description"*:
  filter resources whose ``category`` is ``toy``, extract their
  ``description`` text, and rank against the query with BM25 (Figure 2).
* :func:`build_auction_strategy` — *"rank auction lots"*: select resources of
  type ``lot``; the left branch ranks lots by their own description, the
  right branch traverses ``hasAuction``, ranks auctions by their description
  and traverses back to lots; the two ranked lists are mixed with a weighted
  linear combination (Figure 3).
* :func:`build_expanded_auction_strategy` — the production variant sketched
  in Section 3, with query expansion on every ranking branch.
"""

from __future__ import annotations

from repro.ir.query_expansion import QueryExpander
from repro.ir.ranking import RankingModel
from repro.strategy.graph import StrategyGraph
from repro.strategy.library import (
    ExtractTextBlock,
    MixBlock,
    QueryInputBlock,
    RankByTextBlock,
    SelectByPropertyBlock,
    SelectByTypeBlock,
    TraversePropertyBlock,
)


def build_toy_strategy(
    *,
    category: str = "toy",
    category_property: str = "category",
    text_property: str = "description",
    language: str = "english",
    model: RankingModel | None = None,
) -> StrategyGraph:
    """The toy scenario of Figure 2: rank products of a category by description."""
    graph = StrategyGraph(name="rank toy products by their description")
    graph.add_block("select_category", SelectByPropertyBlock(category_property, category))
    graph.add_block("extract_description", ExtractTextBlock(text_property))
    graph.add_block("query", QueryInputBlock(language=language))
    graph.add_block("rank_bm25", RankByTextBlock(model, language=language))
    graph.connect("select_category", "extract_description")
    graph.connect("extract_description", "rank_bm25", port="documents")
    graph.connect("query", "rank_bm25", port="query")
    return graph


def build_auction_strategy(
    *,
    lot_type: str = "lot",
    auction_property: str = "hasAuction",
    text_property: str = "description",
    language: str = "english",
    lot_weight: float = 0.7,
    auction_weight: float = 0.3,
    model: RankingModel | None = None,
    expander: QueryExpander | None = None,
) -> StrategyGraph:
    """The real-world scenario of Figure 3: rank auction lots.

    The left branch ranks lots by their own description; the right branch
    ranks the auctions containing them by the auction description and
    traverses back to lots; the ranked lists are mixed with the given weights.
    """
    graph = StrategyGraph(name="rank auction lots")
    graph.add_block("select_lots", SelectByTypeBlock(lot_type))
    graph.add_block("query", QueryInputBlock(language=language))

    # left branch: rank lots by their own description
    graph.add_block("lot_descriptions", ExtractTextBlock(text_property))
    graph.add_block(
        "rank_lots", RankByTextBlock(model, language=language, expander=expander)
    )
    graph.connect("select_lots", "lot_descriptions")
    graph.connect("lot_descriptions", "rank_lots", port="documents")
    graph.connect("query", "rank_lots", port="query")

    # right branch: traverse to auctions, rank them, traverse back to lots
    graph.add_block("to_auctions", TraversePropertyBlock(auction_property))
    graph.add_block("auction_descriptions", ExtractTextBlock(text_property))
    graph.add_block(
        "rank_auctions", RankByTextBlock(model, language=language, expander=expander)
    )
    graph.add_block("back_to_lots", TraversePropertyBlock(auction_property, backward=True))
    graph.connect("select_lots", "to_auctions")
    graph.connect("to_auctions", "auction_descriptions")
    graph.connect("auction_descriptions", "rank_auctions", port="documents")
    graph.connect("query", "rank_auctions", port="query")
    graph.connect("rank_auctions", "back_to_lots")

    # mix the two ranked lists with a weighted linear combination
    graph.add_block("mix", MixBlock([lot_weight, auction_weight]))
    graph.connect("rank_lots", "mix", port="ranked_0")
    graph.connect("back_to_lots", "mix", port="ranked_1")
    return graph


def build_expanded_auction_strategy(
    expander: QueryExpander,
    **kwargs,
) -> StrategyGraph:
    """The production variant: the auction strategy with query expansion enabled."""
    return build_auction_strategy(expander=expander, **kwargs)


def build_expert_strategy(
    *,
    document_type: str = "document",
    author_property: str = "authoredBy",
    text_property: str = "description",
    language: str = "english",
    model: RankingModel | None = None,
) -> StrategyGraph:
    """Expert finding: rank documents by the query, traverse authorship to people.

    One of the heterogeneous search tasks the paper's introduction motivates;
    structurally it is the auction strategy's right branch with the traversal
    at the end — evidence from several authored documents merges per person
    through the probabilistic projection.
    """
    graph = StrategyGraph(name="find experts by authored documents")
    graph.add_block("select_documents", SelectByTypeBlock(document_type))
    graph.add_block("query", QueryInputBlock(language=language))
    graph.add_block("texts", ExtractTextBlock(text_property))
    graph.add_block("rank_documents", RankByTextBlock(model, language=language))
    graph.add_block("to_authors", TraversePropertyBlock(author_property, merge="independent"))
    graph.connect("select_documents", "texts")
    graph.connect("texts", "rank_documents", port="documents")
    graph.connect("query", "rank_documents", port="query")
    graph.connect("rank_documents", "to_authors")
    return graph
