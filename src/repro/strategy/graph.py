"""The strategy graph: a validated DAG of blocks.

The graph stores blocks under unique names and directed connections from a
block's output to a named input port of another block.  Validation checks
that every required input port is connected exactly once, that connected
port kinds are compatible, and that the graph is acyclic; execution order is
a topological sort.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import PortError, StrategyError
from repro.strategy.blocks import Block


@dataclass(frozen=True)
class Connection:
    """A directed edge: the output of ``source`` feeds input ``target_port`` of ``target``."""

    source: str
    target: str
    target_port: str


class StrategyGraph:
    """A DAG of named blocks."""

    def __init__(self, name: str = "strategy"):
        self.name = name
        self._blocks: dict[str, Block] = {}
        self._connections: list[Connection] = []

    # -- construction -----------------------------------------------------------------

    def add_block(self, name: str, block: Block) -> str:
        """Register ``block`` under ``name`` and return the name (for chaining)."""
        if name in self._blocks:
            raise StrategyError(f"a block named {name!r} already exists")
        self._blocks[name] = block
        return name

    def connect(self, source: str, target: str, *, port: str | None = None) -> None:
        """Connect the output of ``source`` to an input port of ``target``.

        When ``port`` is omitted the first unconnected input port of the
        target is used (matching the visual designer's "snap to next free
        slot" behaviour).
        """
        source_block = self.block(source)
        target_block = self.block(target)
        input_ports = list(target_block.input_ports())
        if not input_ports:
            raise StrategyError(f"block {target!r} has no input ports")
        if port is None:
            connected = {c.target_port for c in self._connections if c.target == target}
            free = [p.name for p in input_ports if p.name not in connected]
            if not free:
                raise StrategyError(f"all input ports of block {target!r} are already connected")
            port = free[0]
        else:
            if port not in {p.name for p in input_ports}:
                raise StrategyError(
                    f"block {target!r} has no input port {port!r}; "
                    f"available: {[p.name for p in input_ports]}"
                )
        # port-kind compatibility
        target_port_spec = next(p for p in input_ports if p.name == port)
        source_port_spec = source_block.output_port()
        if not source_port_spec.kind.compatible_with(target_port_spec.kind):
            raise PortError(
                f"cannot connect {source!r} ({source_port_spec.kind.value}) to "
                f"{target!r}.{port} ({target_port_spec.kind.value})"
            )
        duplicate = any(
            c.target == target and c.target_port == port for c in self._connections
        )
        if duplicate:
            raise StrategyError(f"input port {target!r}.{port} is already connected")
        self._connections.append(Connection(source=source, target=target, target_port=port))

    # -- accessors ----------------------------------------------------------------------

    def block(self, name: str) -> Block:
        try:
            return self._blocks[name]
        except KeyError:
            raise StrategyError(
                f"unknown block {name!r}; known blocks: {sorted(self._blocks)}"
            ) from None

    def block_names(self) -> list[str]:
        return list(self._blocks)

    def connections(self) -> list[Connection]:
        return list(self._connections)

    def inputs_of(self, name: str) -> dict[str, str]:
        """Return ``{input port: source block}`` for block ``name``."""
        return {
            connection.target_port: connection.source
            for connection in self._connections
            if connection.target == name
        }

    def sinks(self) -> list[str]:
        """Blocks whose output feeds no other block (the strategy results)."""
        sources = {connection.source for connection in self._connections}
        return [name for name in self._blocks if name not in sources]

    # -- validation and ordering ----------------------------------------------------------

    def validate(self) -> None:
        """Check port completeness and acyclicity; raise :class:`StrategyError` on problems."""
        for name, block in self._blocks.items():
            required = {port.name for port in block.input_ports()}
            connected = set(self.inputs_of(name))
            missing = required - connected
            if missing:
                raise StrategyError(
                    f"block {name!r} has unconnected input ports: {sorted(missing)}"
                )
        self.execution_order()  # raises on cycles

    def execution_order(self) -> list[str]:
        """Topological order of the blocks (Kahn's algorithm)."""
        in_degree = {name: 0 for name in self._blocks}
        for connection in self._connections:
            in_degree[connection.target] += 1
        ready = deque(sorted(name for name, degree in in_degree.items() if degree == 0))
        order: list[str] = []
        remaining = dict(in_degree)
        while ready:
            name = ready.popleft()
            order.append(name)
            for connection in self._connections:
                if connection.source == name:
                    remaining[connection.target] -= 1
                    if remaining[connection.target] == 0:
                        ready.append(connection.target)
        if len(order) != len(self._blocks):
            unresolved = sorted(set(self._blocks) - set(order))
            raise StrategyError(f"the strategy graph contains a cycle involving {unresolved}")
        return order

    def __len__(self) -> int:
        return len(self._blocks)
