"""Execution of strategy graphs.

The executor runs the blocks of a validated strategy graph in topological
order, passing each block the payloads produced by its connected inputs, and
returns the payload of the requested result block (by default the graph's
single sink).  Per-block timings are recorded so the benchmarks can report
where time is spent (ranking vs. traversal vs. mixing).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import StrategyError
from repro.pra.relation import ProbabilisticRelation
from repro.strategy.blocks import StrategyContext
from repro.strategy.graph import StrategyGraph
from repro.triples.triple_store import TripleStore


@dataclass
class StrategyRun:
    """The outcome of one strategy execution."""

    query: str
    result: ProbabilisticRelation
    block_outputs: dict[str, Any] = field(default_factory=dict)
    block_timings: dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def top(self, k: int) -> list[tuple[str, float]]:
        """Return the top-k ``(node, probability)`` pairs of the result."""
        ranked = self.result.top(k)
        nodes = ranked.relation.column(ranked.value_columns[0]).to_list()
        probabilities = ranked.probabilities()
        return [(node, float(p)) for node, p in zip(nodes, probabilities)]


class StrategyExecutor:
    """Executes strategy graphs against a triple store."""

    def __init__(self, store: TripleStore):
        self.store = store

    def run(
        self,
        graph: StrategyGraph,
        query: str = "",
        *,
        result_block: str | None = None,
        parameters: dict[str, Any] | None = None,
    ) -> StrategyRun:
        """Execute ``graph`` for ``query`` and return the result of ``result_block``."""
        graph.validate()
        if result_block is None:
            sinks = graph.sinks()
            if len(sinks) != 1:
                raise StrategyError(
                    f"the strategy has {len(sinks)} result blocks ({sinks}); "
                    "pass result_block= to choose one"
                )
            result_block = sinks[0]

        context = StrategyContext(store=self.store, query=query, parameters=parameters or {})
        outputs: dict[str, Any] = {}
        timings: dict[str, float] = {}
        started = time.perf_counter()
        for name in graph.execution_order():
            block = graph.block(name)
            inputs = {
                port: outputs[source] for port, source in graph.inputs_of(name).items()
            }
            block_started = time.perf_counter()
            outputs[name] = block.execute(context, inputs)
            timings[name] = time.perf_counter() - block_started
        elapsed = time.perf_counter() - started

        result = outputs[result_block]
        if not isinstance(result, ProbabilisticRelation):
            raise StrategyError(
                f"result block {result_block!r} produced {type(result).__name__}, "
                "expected a probabilistic relation"
            )
        return StrategyRun(
            query=query,
            result=result.sorted_by_probability(),
            block_outputs=outputs,
            block_timings=timings,
            elapsed_seconds=elapsed,
        )
