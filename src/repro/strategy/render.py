"""Rendering of strategy graphs as ASCII diagrams and Graphviz DOT.

The paper presents strategies as visual block diagrams (Figures 2 and 3).
This module regenerates equivalent diagrams from a
:class:`~repro.strategy.graph.StrategyGraph`: a top-down ASCII rendering that
lists every block with its configuration and incoming edges, and a DOT
rendering for users who want to produce an actual picture.
"""

from __future__ import annotations

from repro.strategy.graph import StrategyGraph


def render_ascii(graph: StrategyGraph) -> str:
    """Render the strategy as indented text in execution order."""
    lines: list[str] = [f"Strategy: {graph.name}", "=" * (10 + len(graph.name))]
    order = graph.execution_order()
    for name in order:
        block = graph.block(name)
        configuration = block.describe()
        config_text = ", ".join(f"{key}={value}" for key, value in configuration.items())
        header = f"[{name}] {block.label}"
        if config_text:
            header += f" ({config_text})"
        lines.append(header)
        inputs = graph.inputs_of(name)
        for port in block.input_ports():
            source = inputs.get(port.name)
            if source is not None:
                lines.append(f"    {port.name} <-- [{source}]")
            else:
                lines.append(f"    {port.name} <-- (unconnected)")
        output = block.output_port()
        lines.append(f"    --> {output.kind.value}: {output.description}")
        lines.append("")
    sinks = graph.sinks()
    lines.append(f"Result block(s): {', '.join(sinks) if sinks else '(none)'}")
    return "\n".join(lines)


def render_dot(graph: StrategyGraph) -> str:
    """Render the strategy as a Graphviz DOT digraph."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=BT;", "  node [shape=box];"]
    for name in graph.block_names():
        block = graph.block(name)
        configuration = block.describe()
        config_text = "\\n".join(f"{key}: {value}" for key, value in configuration.items())
        label = block.label if not config_text else f"{block.label}\\n{config_text}"
        lines.append(f'  "{name}" [label="{label}"];')
    for connection in graph.connections():
        lines.append(
            f'  "{connection.source}" -> "{connection.target}" '
            f'[label="{connection.target_port}"];'
        )
    lines.append("}")
    return "\n".join(lines)
