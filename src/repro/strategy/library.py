"""The standard block library.

These are the building blocks that appear in the paper's two strategies:

* Figure 2 (toy scenario): *Select by property* (category = toy), *Extract
  text* (description), *Query input*, *Rank by Text BM25*;
* Figure 3 (auction scenario): *Select by type* (lot), *Traverse property*
  (hasAuction, forward and backward), *Extract text*, two *Rank by Text*
  blocks and a weighted *Mix*.

Every block consumes and produces probabilistic relations, so "all the
operations in this strategy propagate probabilities through the graph"
(Section 3) without any block-specific code.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.errors import BlockError
from repro.ir.query_expansion import QueryExpander
from repro.ir.ranking import RankingModel
from repro.ir.ranking.base import RankedList
from repro.ir.statistics import build_statistics
from repro.pra import operators as pra_operators
from repro.pra.assumptions import Assumption
from repro.pra.relation import PROBABILITY_COLUMN, ProbabilisticRelation
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.strategy.blocks import Block, Port, PortKind, StrategyContext
from repro.text.analyzers import StandardAnalyzer
from repro.triples.graph import GraphNavigator


def _nodes_relation(rows: list[tuple[str, float]]) -> ProbabilisticRelation:
    schema = Schema([Field("node", DataType.STRING), Field(PROBABILITY_COLUMN, DataType.FLOAT)])
    return ProbabilisticRelation(Relation.from_rows(schema, rows), validate=False)


class QueryInputBlock(Block):
    """Provides the query keywords (the right-hand input of Figure 2)."""

    label = "Query input"

    def __init__(self, *, language: str = "english"):
        self.language = language
        self.analyzer = StandardAnalyzer(language)

    def output_port(self) -> Port:
        return Port("query", PortKind.QUERY, "analyzed query terms")

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> list[str]:
        return self.analyzer.analyze_query(context.query)

    def describe(self) -> dict[str, Any]:
        return {"language": self.language}


class SelectByTypeBlock(Block):
    """Select graph resources of a given type (``(?, type, <type>)`` triples)."""

    label = "Select by type"

    def __init__(self, type_name: str):
        self.type_name = type_name

    def output_port(self) -> Port:
        return Port("resources", PortKind.RESOURCES, f"resources of type {self.type_name}")

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> ProbabilisticRelation:
        selected = context.store.subjects_of_type(self.type_name)
        relation = selected.relation.rename({"subject": "node"})
        return ProbabilisticRelation(relation, validate=False)

    def describe(self) -> dict[str, Any]:
        return {"type": self.type_name}


class SelectByPropertyBlock(Block):
    """Select resources whose ``property`` equals ``value`` (the category=toy filter)."""

    label = "Select by property"

    def __init__(self, property_name: str, value: str):
        self.property_name = property_name
        self.value = value

    def output_port(self) -> Port:
        return Port(
            "resources",
            PortKind.RESOURCES,
            f"resources with {self.property_name} = {self.value}",
        )

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> ProbabilisticRelation:
        matched = context.store.match(property_name=self.property_name, obj=self.value)
        relation = matched.relation.select_columns(["subject", PROBABILITY_COLUMN])
        relation = relation.rename({"subject": "node"})
        return ProbabilisticRelation(relation, validate=False)

    def describe(self) -> dict[str, Any]:
        return {"property": self.property_name, "value": self.value}


class IntersectBlock(Block):
    """Keep resources present in both inputs (probabilities multiplied)."""

    label = "Intersect"

    def input_ports(self) -> Sequence[Port]:
        return [
            Port("left", PortKind.RESOURCES, "first resource set"),
            Port("right", PortKind.RESOURCES, "second resource set"),
        ]

    def output_port(self) -> Port:
        return Port("resources", PortKind.RESOURCES, "resources in both inputs")

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> ProbabilisticRelation:
        left = self._require_resources(self._require_input(inputs, "left"), port="left")
        right = self._require_resources(self._require_input(inputs, "right"), port="right")
        joined = pra_operators.join(left, right, [("node", "node")], Assumption.INDEPENDENT)
        return pra_operators.project(
            joined, [joined.value_columns[0]], Assumption.INDEPENDENT, output_names=["node"]
        )


class TraversePropertyBlock(Block):
    """Traverse one property edge, forward or backward, propagating probabilities."""

    label = "Traverse property"

    def __init__(self, property_name: str, *, backward: bool = False, merge: str = "independent"):
        self.property_name = property_name
        self.backward = backward
        self.merge = Assumption.parse(merge)

    def input_ports(self) -> Sequence[Port]:
        return [Port("resources", PortKind.RESOURCES, "start resources")]

    def output_port(self) -> Port:
        direction = "backward" if self.backward else "forward"
        return Port(
            "resources",
            PortKind.RESOURCES,
            f"resources reached via {self.property_name} ({direction})",
        )

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> ProbabilisticRelation:
        start = self._require_resources(self._require_input(inputs, "resources"), port="resources")
        navigator = GraphNavigator(context.store, assumption=self.merge)
        return navigator.traverse(start, self.property_name, backward=self.backward)

    def describe(self) -> dict[str, Any]:
        return {
            "property": self.property_name,
            "direction": "backward" if self.backward else "forward",
        }


class ExtractTextBlock(Block):
    """Turn resources into a document collection by extracting a text property.

    The output is the on-the-fly ``docs(docID, data, p)`` sub-collection of
    Sections 2.2/2.3: the probability of each document is the product of the
    resource's probability and the text triple's probability.
    """

    label = "Extract text"

    def __init__(self, text_property: str = "description"):
        self.text_property = text_property

    def input_ports(self) -> Sequence[Port]:
        return [Port("resources", PortKind.RESOURCES, "resources to extract text from")]

    def output_port(self) -> Port:
        return Port("documents", PortKind.DOCUMENTS, f"text of property {self.text_property}")

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> ProbabilisticRelation:
        resources = self._require_resources(
            self._require_input(inputs, "resources"), port="resources"
        )
        texts = context.store.select_property(self.text_property)
        joined = pra_operators.join(
            resources, texts, [("node", "subject")], Assumption.INDEPENDENT
        )
        object_column = [name for name in joined.value_columns if name.startswith("object")][-1]
        docs = pra_operators.project(
            joined,
            [joined.value_columns[0], object_column],
            Assumption.INDEPENDENT,
            output_names=["docID", "data"],
        )
        return docs

    def describe(self) -> dict[str, Any]:
        return {"text_property": self.text_property}


class RankByTextBlock(Block):
    """Rank a document collection against the query (the *Rank by Text BM25* block).

    The block builds collection statistics for the sub-collection it receives
    (two distinct inputs create two distinct on-demand indexes, as in
    Section 3), ranks with the configured model, normalises the scores into
    probabilities and multiplies them with the documents' prior probabilities.
    Statistics are cached per collection fingerprint, so repeated queries over
    the same sub-collection reuse the index (hot vs. cold).
    """

    label = "Rank by Text"

    def __init__(
        self,
        model: RankingModel | None = None,
        *,
        language: str = "english",
        top_k: int | None = None,
        expander: QueryExpander | None = None,
    ):
        from repro.ir.ranking import BM25Model

        self.model = model if model is not None else BM25Model()
        self.language = language
        self.top_k = top_k
        self.expander = expander
        self.analyzer = StandardAnalyzer(language)
        self._statistics_cache: dict[str, Any] = {}

    def input_ports(self) -> Sequence[Port]:
        return [
            Port("documents", PortKind.DOCUMENTS, "the collection to rank"),
            Port("query", PortKind.QUERY, "the query terms"),
        ]

    def output_port(self) -> Port:
        return Port("ranked", PortKind.RANKED, f"documents ranked by {self.model.name}")

    def _collection_fingerprint(self, docs: ProbabilisticRelation) -> str:
        ids = docs.relation.column("docID").to_list()
        return f"{len(ids)}:{hash(tuple(ids))}"

    def clear_statistics(self) -> None:
        """Drop the cached per-collection statistics (cold-start state)."""
        self._statistics_cache.clear()

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> ProbabilisticRelation:
        docs = self._require_resources(self._require_input(inputs, "documents"), port="documents")
        query_terms = self._require_input(inputs, "query")
        if not isinstance(query_terms, list):
            raise BlockError("the 'query' input must be a list of terms")
        if self.expander is not None:
            # Expansion dictionaries use natural-language terms, so seed the
            # expander with the raw query tokens from the context as well as
            # the analyzed terms, and analyze whatever it adds.
            raw_tokens = [
                token.lower()
                for token in self.analyzer.tokenizer.iter_tokens(context.query)
            ]
            seeds = list(dict.fromkeys(raw_tokens + list(query_terms)))
            additions: list[str] = []
            for addition in self.expander.expand(seeds):
                analyzed = self.analyzer.analyze(addition)
                additions.extend(analyzed if analyzed else [addition])
            query_terms = list(query_terms) + [
                term for term in dict.fromkeys(additions) if term not in query_terms
            ]

        fingerprint = self._collection_fingerprint(docs)
        cached = self._statistics_cache.get(fingerprint)
        if cached is None:
            ids = docs.relation.column("docID").to_list()
            texts = docs.relation.column("data").to_list()
            cached = build_statistics(list(zip(ids, texts)), self.analyzer)
            self._statistics_cache[fingerprint] = cached

        ranked: RankedList = self.model.rank(cached, query_terms, top_k=self.top_k)
        probabilities = ranked.to_probabilities().scores
        prior = {
            doc_id: probability
            for doc_id, probability in zip(
                docs.relation.column("docID").to_list(), docs.probabilities()
            )
        }
        combined = np.asarray(
            [
                probability * prior.get(doc_id, 1.0)
                for doc_id, probability in zip(ranked.doc_ids, probabilities)
            ],
            dtype=np.float64,
        )
        schema = Schema([Field("node", DataType.STRING), Field(PROBABILITY_COLUMN, DataType.FLOAT)])
        relation = Relation(
            schema,
            [
                Column([str(doc_id) for doc_id in ranked.doc_ids], DataType.STRING),
                Column(combined, DataType.FLOAT),
            ],
        )
        return ProbabilisticRelation(relation, validate=False)

    def describe(self) -> dict[str, Any]:
        return {
            "model": self.model.describe(),
            "language": self.language,
            "top_k": self.top_k,
            "expansion": self.expander.describe() if self.expander is not None else None,
        }


class MixBlock(Block):
    """Mix several ranked lists via a weighted linear combination (Figure 3, step 4)."""

    label = "Mix"

    def __init__(self, weights: Sequence[float], *, normalize: bool = True):
        if not weights:
            raise BlockError("Mix requires at least one weight")
        if any(weight < 0 for weight in weights):
            raise BlockError("Mix weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise BlockError("Mix weights must not all be zero")
        self.weights = [float(w) / total if normalize else float(w) for w in weights]

    def input_ports(self) -> Sequence[Port]:
        return [
            Port(f"ranked_{index}", PortKind.RANKED, f"ranked list {index} (weight {weight:.2f})")
            for index, weight in enumerate(self.weights)
        ]

    def output_port(self) -> Port:
        return Port("ranked", PortKind.RANKED, "weighted linear combination")

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> ProbabilisticRelation:
        combined: ProbabilisticRelation | None = None
        for index, weight in enumerate(self.weights):
            payload = self._require_resources(
                self._require_input(inputs, f"ranked_{index}"), port=f"ranked_{index}"
            )
            weighted = pra_operators.weight(payload, weight)
            if combined is None:
                combined = weighted
            else:
                combined = pra_operators.unite(combined, weighted, Assumption.DISJOINT)
        assert combined is not None
        return combined.sorted_by_probability()

    def describe(self) -> dict[str, Any]:
        return {"weights": self.weights}


class LimitBlock(Block):
    """Keep only the top-k results of a ranked list."""

    label = "Limit"

    def __init__(self, count: int):
        if count < 1:
            raise BlockError("Limit requires a positive count")
        self.count = count

    def input_ports(self) -> Sequence[Port]:
        return [Port("ranked", PortKind.RANKED, "ranked list to truncate")]

    def output_port(self) -> Port:
        return Port("ranked", PortKind.RANKED, f"top {self.count} results")

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> ProbabilisticRelation:
        ranked = self._require_resources(self._require_input(inputs, "ranked"), port="ranked")
        return ranked.top(self.count)

    def describe(self) -> dict[str, Any]:
        return {"count": self.count}
