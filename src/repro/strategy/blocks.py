"""Strategy blocks: typed ports, execution context and the block base class.

Blocks communicate through *ports*.  Each port has a :class:`PortKind`; the
graph validator refuses connections between incompatible kinds, which is the
API equivalent of the visual designer only letting compatible blocks snap
together.

Port payloads at execution time:

* ``RESOURCES`` — a probabilistic relation with a single ``node`` value
  column: a set of graph resources with probabilities;
* ``DOCUMENTS`` — a probabilistic relation ``(docID, data, p)``: a text
  sub-collection defined on the fly;
* ``QUERY`` — a list of query terms (strings);
* ``RANKED`` — the same shape as ``RESOURCES``; the distinction is semantic
  (probabilities carry relevance information) and kept for diagram fidelity,
  the two kinds are mutually connectable.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BlockError, PortError
from repro.pra.relation import ProbabilisticRelation
from repro.relational.database import Database
from repro.triples.triple_store import TripleStore


class PortKind(enum.Enum):
    """The kind of payload a port produces or consumes."""

    RESOURCES = "resources"
    DOCUMENTS = "documents"
    QUERY = "query"
    RANKED = "ranked"

    def compatible_with(self, other: "PortKind") -> bool:
        """RANKED and RESOURCES are interchangeable; other kinds must match exactly."""
        interchangeable = {PortKind.RESOURCES, PortKind.RANKED}
        if self in interchangeable and other in interchangeable:
            return True
        return self is other


@dataclass(frozen=True)
class Port:
    """A named, typed input or output of a block."""

    name: str
    kind: PortKind
    description: str = ""


@dataclass
class StrategyContext:
    """Everything a block may need at execution time."""

    store: TripleStore
    query: str = ""
    parameters: dict[str, Any] = field(default_factory=dict)

    @property
    def database(self) -> Database:
        return self.store.database


class Block:
    """Base class of all strategy building blocks.

    Subclasses declare their ports via :meth:`input_ports` / :meth:`output_port`
    and implement :meth:`execute`, which receives the context and a mapping of
    input-port name to payload and returns the output payload.
    """

    #: human-readable label shown in rendered diagrams
    label = "Block"

    def input_ports(self) -> Sequence[Port]:
        """The block's input ports, in display order (left to right)."""
        return []

    def output_port(self) -> Port:
        """The block's single output port."""
        raise NotImplementedError

    def execute(self, context: StrategyContext, inputs: dict[str, Any]) -> Any:
        """Produce the output payload from the input payloads."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        """Return the block's configuration (used by the renderer)."""
        return {}

    # -- helpers for subclasses ------------------------------------------------------

    def _require_input(self, inputs: dict[str, Any], name: str) -> Any:
        try:
            return inputs[name]
        except KeyError:
            raise BlockError(
                f"block {self.label!r} is missing its {name!r} input"
            ) from None

    @staticmethod
    def _require_resources(payload: Any, *, port: str) -> ProbabilisticRelation:
        if not isinstance(payload, ProbabilisticRelation):
            raise PortError(
                f"port {port!r} expected a probabilistic relation, got {type(payload).__name__}"
            )
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"
