"""Command-line interface: run the paper's scenarios without writing code.

Every subcommand drives the :class:`~repro.engine.Engine` facade:

* ``python -m repro toy --products 400 --query "wooden train"`` — the toy
  scenario (Figure 2) on a generated catalog;
* ``python -m repro auction --lots 2000 --query "antique clock"`` — the
  auction scenario (Figure 3) on a generated auction graph;
* ``python -m repro experts --query-topic 0`` — the expert-finding scenario;
* ``python -m repro spinql "<program>"`` — compile a SpinQL program and print
  its PRA plan and SQL translation;
* ``python -m repro explain "<program>"`` — the full
  :meth:`~repro.engine.query.Query.explain` report (raw plan, optimized
  plan, SQL);
* ``python -m repro snapshot --out DIR`` — build a scenario (or load a
  triples file) and save a columnar engine snapshot (see
  :mod:`repro.storage`);
* ``python -m repro workload record|summary|top|replay`` — record a
  scenario workload log to JSONL, summarize or rank an exported log, and
  replay/synthesize it as load (see :mod:`repro.workload`).

Every subcommand accepts ``--json`` for machine-readable output,
``--from-snapshot DIR`` to boot the engine from a saved snapshot instead of
regenerating data, and ``--top-k``: on the scenario subcommands it bounds
the ranked answer (a synonym of ``--top``); on ``spinql``/``explain`` it
wraps the program in a ``TOP k`` node so the reports show where the
optimizer pushes it.  The scenario subcommands print the strategy diagram
with ``--show-strategy``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import Any

from repro.engine import Engine
from repro.errors import EngineError, ReproError
from repro.workloads import (
    generate_auction_triples,
    generate_expert_triples,
    generate_product_triples,
)


def _emit_run(
    command: str, run, args: argparse.Namespace, extra: dict[str, Any] | None = None
) -> None:
    """Print a strategy run as text or JSON, honouring ``--json`` and ``--top``."""
    results = run.top(args.top)
    if args.json:
        payload: dict[str, Any] = {
            "command": command,
            "query": run.query,
            "elapsed_ms": run.elapsed_seconds * 1000.0,
            "results": [{"node": node, "p": probability} for node, probability in results],
        }
        if extra:
            payload.update(extra)
        print(json.dumps(payload, indent=2))
        return
    print(f"query: {run.query!r}  ({run.elapsed_seconds * 1000:.1f} ms)")
    for node, probability in results:
        print(f"  {node:<14} p = {probability:.4f}")


def _run_scenario(
    args: argparse.Namespace,
    command: str,
    engine: Engine,
    strategy_name: str,
    query: str,
    extra: dict[str, Any] | None = None,
    **builder_kwargs: Any,
) -> int:
    strategy_query = engine.strategy(strategy_name, query=query, **builder_kwargs)
    if args.show_strategy and not args.json:
        print(strategy_query.explain())
    run = strategy_query.execute()
    _emit_run(command, run, args, extra)
    return 0


def _snapshot_engine(args: argparse.Namespace) -> Engine | None:
    """Open the ``--from-snapshot`` engine, or ``None`` when the flag is absent.

    Partitioned snapshots are detected from their shard map and opened
    behind the in-process scatter-gather executor, so every subcommand
    works against both layouts.
    """
    from repro.storage.shards import is_sharded_snapshot

    if not getattr(args, "from_snapshot", None):
        return None
    if is_sharded_snapshot(args.from_snapshot):
        return Engine.open_sharded(args.from_snapshot)
    return Engine.open(args.from_snapshot)


def _require_query(args: argparse.Namespace) -> str:
    if not args.query:
        raise EngineError(
            "--from-snapshot boots from saved data, so the generated workload's "
            "default query is not available; pass an explicit --query"
        )
    return args.query


def _cmd_toy(args: argparse.Namespace) -> int:
    engine = _snapshot_engine(args)
    if engine is not None:
        return _run_scenario(
            args, "toy", engine, "toy", _require_query(args), category=args.category
        )
    workload = generate_product_triples(args.products, seed=args.seed)
    engine = Engine.from_triples(workload.triples)
    query = args.query
    if not query:
        target = workload.products_in_category(args.category)
        if not target:
            print(f"no products in category {args.category!r}", file=sys.stderr)
            return 1
        query = " ".join(workload.descriptions[target[0]].split()[:3])
    return _run_scenario(args, "toy", engine, "toy", query, category=args.category)


def _cmd_auction(args: argparse.Namespace) -> int:
    engine = _snapshot_engine(args)
    if engine is None:
        workload = generate_auction_triples(args.lots, seed=args.seed)
        engine = Engine.from_triples(workload.triples)
        query = args.query or " ".join(workload.lot_descriptions["lot1"].split()[:3])
    else:
        query = _require_query(args)
    return _run_scenario(
        args,
        "auction",
        engine,
        "auction",
        query,
        lot_weight=args.lot_weight,
        auction_weight=args.auction_weight,
    )


def _cmd_experts(args: argparse.Namespace) -> int:
    engine = _snapshot_engine(args)
    extra: dict[str, Any] | None = None
    if engine is not None:
        return _run_scenario(args, "experts", engine, "experts", _require_query(args))
    workload = generate_expert_triples(args.people, args.documents, seed=args.seed)
    engine = Engine.from_triples(workload.triples)
    if args.query:
        query = args.query
    else:
        topic = workload.topics[args.query_topic % len(workload.topics)]
        query = workload.query_for_topic(topic)
        true_experts = workload.experts_on(topic)
        extra = {"topic": topic, "true_experts": true_experts}
        if not args.json:
            print(f"(query drawn from {topic}: true experts = {true_experts})")
    return _run_scenario(args, "experts", engine, "experts", query, extra)


def _cmd_spinql(args: argparse.Namespace) -> int:
    from repro.spinql import to_sql

    engine = _snapshot_engine(args) or Engine()
    query = engine.spinql(args.program)
    plan, optimized = query.plans(top_k=args.top_k)
    sql = to_sql(optimized, view_name=args.view_name)
    if args.json:
        print(
            json.dumps(
                {
                    "command": "spinql",
                    "pra_plan": plan.describe(),
                    "optimized_plan": optimized.describe(),
                    "sql": sql,
                },
                indent=2,
            )
        )
        return 0
    print("PRA plan:")
    print(plan.describe())
    print("\nSQL translation:")
    print(sql)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    engine = _snapshot_engine(args) or Engine()
    query = engine.spinql(args.program)
    if args.json:
        print(
            json.dumps(
                {"command": "explain", **query.explain_data(top_k=args.top_k)}, indent=2
            )
        )
        return 0
    print(query.explain(top_k=args.top_k))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Statically verify a SpinQL program; exit 1 when it has errors."""
    engine = _snapshot_engine(args) or Engine()
    report = engine.spinql(args.program).check(top_k=args.top_k)
    if args.json:
        print(json.dumps({"command": "check", **report.to_dict()}, indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    if args.from_triples and args.from_snapshot:
        raise EngineError(
            "--from-triples and --from-snapshot are both data sources for the "
            "snapshot; pass exactly one"
        )
    engine = _snapshot_engine(args)
    scenario = args.scenario
    if engine is None:
        if args.from_triples:
            from repro.triples.loader import load_triples

            try:
                triples = load_triples(args.from_triples)
            except OSError as error:
                raise EngineError(
                    f"cannot read triples file {args.from_triples}: {error}"
                ) from error
            engine = Engine.from_triples(triples)
        elif scenario == "toy":
            workload = generate_product_triples(args.products, seed=args.seed)
            engine = Engine.from_triples(workload.triples)
        elif scenario == "auction":
            workload = generate_auction_triples(args.lots, seed=args.seed)
            engine = Engine.from_triples(workload.triples)
        else:
            workload = generate_expert_triples(args.people, args.documents, seed=args.seed)
            engine = Engine.from_triples(workload.triples)
    path = engine.save(args.out, shards=args.shards)
    payload = {
        "command": "snapshot",
        "path": str(path),
        "triples": engine.store.num_triples,
        "tables": engine.database.table_names(),
        "shards": args.shards,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"snapshot written to {path} ({payload['triples']} triples, "
              f"{len(payload['tables'])} tables)")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    """Re-partition a snapshot (plain or sharded) into an N-shard layout."""
    from repro.storage.shards import is_sharded_snapshot, read_shard_map

    if not args.from_snapshot:
        raise EngineError("shard needs --from-snapshot DIR (the snapshot to re-partition)")
    if is_sharded_snapshot(args.from_snapshot):
        engine = Engine.open_sharded(args.from_snapshot)
    else:
        engine = Engine.open(args.from_snapshot)
    try:
        path = engine.save(args.out, shards=args.shards)
    finally:
        engine.close()
    shard_map = read_shard_map(path)
    payload = {
        "command": "shard",
        "path": str(path),
        "shards": shard_map.num_shards,
        "tables": {name: shard_map.shard_keys[name] for name in shard_map.table_names},
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"sharded snapshot written to {path} ({shard_map.num_shards} shards; "
              f"shard keys: {payload['tables']})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot a router (and worker pool) over a sharded snapshot and serve HTTP."""
    import tempfile

    from repro.serving import Router, ServingConfig
    from repro.storage.shards import is_sharded_snapshot

    if not args.from_snapshot:
        raise EngineError("serve needs --from-snapshot DIR (a snapshot to serve)")
    path = args.from_snapshot
    if not is_sharded_snapshot(path):
        shards = args.shards or 2
        staging = tempfile.mkdtemp(prefix="repro-serve-shards-")
        print(f"partitioning {path} into {shards} shards under {staging} ...",
              file=sys.stderr)
        source = Engine.open(path)
        try:
            path = str(source.save(staging, shards=shards))
        finally:
            source.close()
    elif args.shards:
        raise EngineError(
            "--shards re-partitions an unsharded snapshot; this snapshot is already "
            "sharded (use the `shard` subcommand to change its layout)"
        )
    config = ServingConfig.from_cli_args(args)
    engine = Engine.open_sharded(
        path,
        executor="pool" if args.workers != 0 else "sharded",
        config=config,
    )
    # the router and HTTP front end inherit the same config (admission
    # limits, host/port) from the engine — one object, four entry points
    router = Router(engine)
    server = router.serve()
    info = {
        "command": "serve",
        "endpoint": f"http://{config.host}:{server.server_address[1]}",
        "snapshot": path,
        "executor": engine.executor_info(),
        "config": config.to_dict(),
    }
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        print(f"serving {path} at {info['endpoint']} ({info['executor']})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        router.close()
    return 0


def _cmd_reshard(args: argparse.Namespace) -> int:
    """Re-partition a served snapshot online: build N' shards, swap atomically."""
    from repro.serving import ServingConfig
    from repro.storage.shards import is_sharded_snapshot

    if not args.from_snapshot:
        raise EngineError("reshard needs --from-snapshot DIR (a sharded snapshot)")
    if not is_sharded_snapshot(args.from_snapshot):
        raise EngineError(
            "reshard works on partitioned snapshots; use the `shard` subcommand "
            "to create one first"
        )
    config = ServingConfig.from_cli_args(args)
    engine = Engine.open_sharded(
        args.from_snapshot,
        executor="pool" if args.workers != 0 else "sharded",
        config=config,
    )
    try:
        before = engine.executor_info()
        summary = engine.reshard(args.shards, out=args.out)
        after = engine.executor_info()
    finally:
        engine.close()
    payload = {
        "command": "reshard",
        "before": before,
        "after": after,
        "swap": summary,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"resharded {args.from_snapshot}: {summary['from_shards']} -> "
            f"{summary['to_shards']} shards (epoch {summary['from_epoch']} -> "
            f"{summary['to_epoch']}) at {summary['path']}"
        )
    return 0


def _workload_queries(args: argparse.Namespace) -> list[str]:
    """The distinct query strings the ``workload record`` action cycles over."""
    if args.query:
        return list(args.query)
    workload = generate_auction_triples(args.lots, seed=args.seed)
    queries = [
        " ".join(description.split()[:3])
        for _lot, description in sorted(workload.lot_descriptions.items())
    ]
    return queries[: max(1, args.distinct)]


def _workload_engine(args: argparse.Namespace) -> Engine:
    engine = _snapshot_engine(args)
    if engine is not None:
        return engine
    workload = generate_auction_triples(args.lots, seed=args.seed)
    return Engine.from_triples(workload.triples)


def _cmd_workload(args: argparse.Namespace) -> int:
    """Record, summarize, rank or replay a workload log (see repro.workload)."""
    from repro.workload import (
        EngineTarget,
        load_records,
        replay_schedule,
        run_schedule,
        summarize,
        synthesize_schedule,
        top_fingerprints,
    )

    if args.action == "record":
        queries = _workload_queries(args)
        engine = _workload_engine(args)
        try:
            for index in range(args.requests):
                engine.strategy("auction", query=queries[index % len(queries)]).execute()
            engine.workload_log.export(args.out)
            payload = {
                "command": "workload",
                "action": "record",
                "out": args.out,
                **engine.workload_log.summary(top=args.top_n),
            }
        finally:
            engine.close()
    elif args.action == "summary":
        payload = {
            "command": "workload",
            "action": "summary",
            **summarize(load_records(args.log), top=args.top_n),
        }
    elif args.action == "top":
        payload = {
            "command": "workload",
            "action": "top",
            "fingerprints": top_fingerprints(load_records(args.log), args.top_n),
        }
    else:  # replay
        records = load_records(args.log)
        if args.synthesize:
            schedule = synthesize_schedule(
                records,
                num_requests=args.requests,
                seed=args.seed,
                mode=args.mode,
                zipf_s=args.zipf_s,
                rate_qps=args.rate_qps,
            )
        else:
            schedule = replay_schedule(records)
        if args.hash_only:
            print(schedule.schedule_hash())
            return 0
        engine = _workload_engine(args)
        try:
            report = run_schedule(
                schedule, EngineTarget(engine), concurrency=args.concurrency
            )
        finally:
            engine.close()
        payload = {
            "command": "workload",
            "action": "replay",
            "schedule_hash": schedule.schedule_hash(),
            **report.to_dict(),
        }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            if key == "command":
                continue
            print(f"{key}: {json.dumps(value) if isinstance(value, (dict, list)) else value}")
    return 0


def _add_common(parser: argparse.ArgumentParser, *, top: bool = True) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON output"
    )
    parser.add_argument(
        "--from-snapshot",
        dest="from_snapshot",
        metavar="DIR",
        default=None,
        help="boot the engine from a snapshot directory (Engine.save / `repro snapshot`)",
    )
    if top:
        parser.add_argument(
            "--top",
            "--top-k",
            dest="top",
            type=int,
            default=10,
            help="how many ranked answers to print (rank-aware top-k)",
        )
    else:
        parser.add_argument(
            "--top-k",
            dest="top_k",
            type=int,
            default=None,
            help="wrap the program in a TOP k node and show where it is pushed",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Industrial-strength IR on databases — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    toy = subparsers.add_parser("toy", help="the toy scenario (Figure 2)")
    toy.add_argument("--products", type=int, default=400)
    toy.add_argument("--category", default="toy")
    toy.add_argument("--query", default="")
    toy.add_argument("--seed", type=int, default=21)
    toy.add_argument("--show-strategy", action="store_true")
    _add_common(toy)
    toy.set_defaults(handler=_cmd_toy)

    auction = subparsers.add_parser("auction", help="the auction scenario (Figure 3)")
    auction.add_argument("--lots", type=int, default=2000)
    auction.add_argument("--query", default="")
    auction.add_argument("--lot-weight", type=float, default=0.7)
    auction.add_argument("--auction-weight", type=float, default=0.3)
    auction.add_argument("--seed", type=int, default=37)
    auction.add_argument("--show-strategy", action="store_true")
    _add_common(auction)
    auction.set_defaults(handler=_cmd_auction)

    experts = subparsers.add_parser("experts", help="the expert-finding scenario")
    experts.add_argument("--people", type=int, default=60)
    experts.add_argument("--documents", type=int, default=500)
    experts.add_argument("--query", default="")
    experts.add_argument("--query-topic", type=int, default=0)
    experts.add_argument("--seed", type=int, default=77)
    experts.add_argument("--show-strategy", action="store_true")
    _add_common(experts)
    experts.set_defaults(handler=_cmd_experts)

    spinql = subparsers.add_parser("spinql", help="compile a SpinQL program")
    spinql.add_argument("program")
    spinql.add_argument("--view-name", default=None)
    _add_common(spinql, top=False)
    spinql.set_defaults(handler=_cmd_spinql)

    explain = subparsers.add_parser(
        "explain", help="full explain report for a SpinQL program"
    )
    explain.add_argument("program")
    _add_common(explain, top=False)
    explain.set_defaults(handler=_cmd_explain)

    check = subparsers.add_parser(
        "check",
        help="statically verify a SpinQL program without executing it "
        "(exit 1 on errors)",
    )
    check.add_argument("program")
    _add_common(check, top=False)
    check.set_defaults(handler=_cmd_check)

    snapshot = subparsers.add_parser(
        "snapshot", help="save a columnar engine snapshot (see repro.storage)"
    )
    snapshot.add_argument("--out", required=True, help="directory to write the snapshot to")
    snapshot.add_argument(
        "--scenario", choices=("toy", "auction", "experts"), default="auction"
    )
    snapshot.add_argument("--from-triples", default=None, metavar="FILE",
                          help="snapshot a triples text file instead of a generated scenario")
    snapshot.add_argument("--products", type=int, default=400)
    snapshot.add_argument("--lots", type=int, default=2000)
    snapshot.add_argument("--people", type=int, default=60)
    snapshot.add_argument("--documents", type=int, default=500)
    snapshot.add_argument("--seed", type=int, default=21)
    snapshot.add_argument(
        "--shards",
        type=int,
        default=None,
        help="write a partitioned snapshot with this many shards (see `repro serve`)",
    )
    _add_common(snapshot, top=False)
    snapshot.set_defaults(handler=_cmd_snapshot)

    shard = subparsers.add_parser(
        "shard", help="re-partition an existing snapshot into N shards"
    )
    shard.add_argument("--out", required=True, help="directory for the sharded snapshot")
    shard.add_argument("--shards", type=int, required=True, help="number of shards")
    _add_common(shard, top=False)
    shard.set_defaults(handler=_cmd_shard)

    serve = subparsers.add_parser(
        "serve", help="serve a (sharded) snapshot over HTTP with a worker pool"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition an unsharded --from-snapshot into this many shards first",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: one per shard; 0 = in-process sharded executor)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="workers serving each shard; >= 2 survives single-worker death "
             "with transparent failover",
    )
    serve.add_argument("--max-concurrent", type=int, default=4,
                       help="requests executing at once (admission control)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="requests allowed to wait before load is shed (HTTP 503)")
    serve.add_argument(
        "--transport",
        choices=("auto", "shm", "inline"),
        default="auto",
        help="worker reply transport: shared memory for large results "
             "('auto'/'shm', platform permitting) or the pipe codec only ('inline')",
    )
    serve.add_argument("--shm-threshold", dest="shm_threshold", type=int, default=None,
                       help="reply bytes at/above which results travel via shared memory")
    serve.add_argument("--health-interval", dest="health_interval_seconds", type=float,
                       default=None,
                       help="seconds between supervisor health checks of the workers")
    serve.add_argument("--retry-budget", dest="retry_budget", type=int, default=None,
                       help="failover re-routes allowed per request beyond the first try")
    serve.add_argument("--max-batch-size", dest="max_batch_size", type=int, default=None,
                       help="co-arriving requests coalesced into one wire frame per "
                            "worker pipe (1 disables batching; a lone request is "
                            "never delayed)")
    serve.add_argument("--max-batch-delay-ms", dest="max_batch_delay_ms", type=float,
                       default=None,
                       help="longest a queued frame may wait for stragglers before "
                            "the batch is flushed")
    serve.add_argument("--no-collapse", dest="collapse_requests", action="store_false",
                       default=None,
                       help="disable in-flight collapsing of identical concurrent "
                            "requests onto one execution")
    _add_common(serve, top=False)
    serve.set_defaults(handler=_cmd_serve)

    reshard = subparsers.add_parser(
        "reshard",
        help="re-partition a sharded snapshot online: background build + atomic swap",
    )
    reshard.add_argument("--shards", type=int, required=True,
                         help="target shard count for the new layout")
    reshard.add_argument("--out", required=True,
                         help="directory for the new partitioned layout")
    reshard.add_argument(
        "--workers",
        type=int,
        default=0,
        help="serve through a worker pool during the swap (0 = in-process executor)",
    )
    reshard.add_argument("--replicas", type=int, default=None,
                         help="replicas per shard while serving through a pool")
    _add_common(reshard, top=False)
    reshard.set_defaults(handler=_cmd_reshard)

    workload = subparsers.add_parser(
        "workload",
        help="record, summarize, rank or replay a workload log (repro.workload)",
    )
    actions = workload.add_subparsers(dest="action", required=True)

    def _common_workload(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON output")
        sub.add_argument("--top-n", dest="top_n", type=int, default=10,
                         help="fingerprints to include in summaries/rankings")

    def _scenario_workload(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--from-snapshot", dest="from_snapshot", metavar="DIR",
                         default=None,
                         help="run against a snapshot engine instead of the "
                              "generated auction scenario")
        sub.add_argument("--lots", type=int, default=200,
                         help="auction lots to generate (ignored with --from-snapshot)")
        sub.add_argument("--seed", type=int, default=37)

    record = actions.add_parser(
        "record", help="run a scenario workload and export its log as JSONL"
    )
    record.add_argument("--out", required=True, help="JSONL file for the exported log")
    record.add_argument("--requests", type=int, default=50,
                        help="how many strategy requests to issue")
    record.add_argument("--distinct", type=int, default=8,
                        help="distinct query strings to cycle over")
    record.add_argument("--query", action="append", default=None,
                        help="explicit query string (repeatable; overrides --distinct)")
    _scenario_workload(record)
    _common_workload(record)
    record.set_defaults(handler=_cmd_workload)

    summary = actions.add_parser("summary", help="summarize an exported workload log")
    summary.add_argument("--log", required=True, help="JSONL log (workload record/export)")
    _common_workload(summary)
    summary.set_defaults(handler=_cmd_workload)

    top_action = actions.add_parser("top", help="rank a log's hottest fingerprints")
    top_action.add_argument("--log", required=True)
    _common_workload(top_action)
    top_action.set_defaults(handler=_cmd_workload)

    replay = actions.add_parser(
        "replay", help="replay a log (or synthesize load from it) in-process"
    )
    replay.add_argument("--log", required=True)
    replay.add_argument("--synthesize", action="store_true",
                        help="synthesize traffic from the log's templates instead of "
                             "replaying it verbatim")
    replay.add_argument("--requests", type=int, default=100,
                        help="requests to synthesize (with --synthesize)")
    replay.add_argument("--mode", choices=("closed", "open"), default="closed")
    replay.add_argument("--zipf-s", dest="zipf_s", type=float, default=1.1,
                        help="Zipf skew over request templates (with --synthesize)")
    replay.add_argument("--rate-qps", dest="rate_qps", type=float, default=50.0,
                        help="open-loop arrival rate (with --mode open)")
    replay.add_argument("--concurrency", type=int, default=4)
    replay.add_argument("--hash-only", dest="hash_only", action="store_true",
                        help="print the deterministic schedule hash and exit "
                             "without executing")
    _scenario_workload(replay)
    _common_workload(replay)
    replay.set_defaults(handler=_cmd_workload)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (missing snapshot directories, format-version mismatches,
    malformed programs) are reported on stderr with exit code 1 instead of a
    traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
