"""Command-line interface: run the paper's scenarios without writing code.

The CLI exposes the two scenarios of the paper plus an interactive-style
ad-hoc query mode over a generated workload:

* ``python -m repro toy --products 400 --query "wooden train"`` — the toy
  scenario (Figure 2) on a generated catalog;
* ``python -m repro auction --lots 2000 --query "antique clock"`` — the
  auction scenario (Figure 3) on a generated auction graph;
* ``python -m repro experts --query-topic 0`` — the expert-finding scenario;
* ``python -m repro spinql "<program>"`` — compile a SpinQL program and print
  its PRA plan and SQL translation.

Every subcommand prints the strategy diagram (``--show-strategy``) and the
top results with their probabilities.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.strategy import (
    StrategyExecutor,
    build_auction_strategy,
    build_toy_strategy,
    render_ascii,
)
from repro.triples import TripleStore
from repro.workloads import (
    generate_auction_triples,
    generate_expert_triples,
    generate_product_triples,
)


def _print_results(run, top_k: int) -> None:
    print(f"query: {run.query!r}  ({run.elapsed_seconds * 1000:.1f} ms)")
    for node, probability in run.top(top_k):
        print(f"  {node:<14} p = {probability:.4f}")


def _cmd_toy(args: argparse.Namespace) -> int:
    workload = generate_product_triples(args.products, seed=args.seed)
    store = TripleStore()
    store.add_all(workload.triples)
    store.load()
    strategy = build_toy_strategy(category=args.category)
    if args.show_strategy:
        print(render_ascii(strategy))
    query = args.query
    if not query:
        target = workload.products_in_category(args.category)
        if not target:
            print(f"no products in category {args.category!r}", file=sys.stderr)
            return 1
        query = " ".join(workload.descriptions[target[0]].split()[:3])
    run = StrategyExecutor(store).run(strategy, query=query)
    _print_results(run, args.top)
    return 0


def _cmd_auction(args: argparse.Namespace) -> int:
    workload = generate_auction_triples(args.lots, seed=args.seed)
    store = TripleStore()
    store.add_all(workload.triples)
    store.load()
    strategy = build_auction_strategy(
        lot_weight=args.lot_weight, auction_weight=args.auction_weight
    )
    if args.show_strategy:
        print(render_ascii(strategy))
    query = args.query or " ".join(workload.lot_descriptions["lot1"].split()[:3])
    run = StrategyExecutor(store).run(strategy, query=query)
    _print_results(run, args.top)
    return 0


def _cmd_experts(args: argparse.Namespace) -> int:
    from repro.strategy.prebuilt import build_expert_strategy

    workload = generate_expert_triples(args.people, args.documents, seed=args.seed)
    store = TripleStore()
    store.add_all(workload.triples)
    store.load()
    strategy = build_expert_strategy()
    if args.show_strategy:
        print(render_ascii(strategy))
    if args.query:
        query = args.query
    else:
        topic = workload.topics[args.query_topic % len(workload.topics)]
        query = workload.query_for_topic(topic)
        print(f"(query drawn from {topic}: true experts = {workload.experts_on(topic)})")
    run = StrategyExecutor(store).run(strategy, query=query)
    _print_results(run, args.top)
    return 0


def _cmd_spinql(args: argparse.Namespace) -> int:
    from repro.spinql import compile_script, to_sql

    compiled = compile_script(args.program)
    print("PRA plan:")
    print(compiled.final_plan.describe())
    print("\nSQL translation:")
    print(to_sql(compiled.final_plan, view_name=args.view_name))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Industrial-strength IR on databases — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    toy = subparsers.add_parser("toy", help="the toy scenario (Figure 2)")
    toy.add_argument("--products", type=int, default=400)
    toy.add_argument("--category", default="toy")
    toy.add_argument("--query", default="")
    toy.add_argument("--top", type=int, default=10)
    toy.add_argument("--seed", type=int, default=21)
    toy.add_argument("--show-strategy", action="store_true")
    toy.set_defaults(handler=_cmd_toy)

    auction = subparsers.add_parser("auction", help="the auction scenario (Figure 3)")
    auction.add_argument("--lots", type=int, default=2000)
    auction.add_argument("--query", default="")
    auction.add_argument("--lot-weight", type=float, default=0.7)
    auction.add_argument("--auction-weight", type=float, default=0.3)
    auction.add_argument("--top", type=int, default=10)
    auction.add_argument("--seed", type=int, default=37)
    auction.add_argument("--show-strategy", action="store_true")
    auction.set_defaults(handler=_cmd_auction)

    experts = subparsers.add_parser("experts", help="the expert-finding scenario")
    experts.add_argument("--people", type=int, default=60)
    experts.add_argument("--documents", type=int, default=500)
    experts.add_argument("--query", default="")
    experts.add_argument("--query-topic", type=int, default=0)
    experts.add_argument("--top", type=int, default=10)
    experts.add_argument("--seed", type=int, default=77)
    experts.add_argument("--show-strategy", action="store_true")
    experts.set_defaults(handler=_cmd_experts)

    spinql = subparsers.add_parser("spinql", help="compile a SpinQL program")
    spinql.add_argument("program")
    spinql.add_argument("--view-name", default=None)
    spinql.set_defaults(handler=_cmd_spinql)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
