"""Command-line interface: run the paper's scenarios without writing code.

Every subcommand drives the :class:`~repro.engine.Engine` facade:

* ``python -m repro toy --products 400 --query "wooden train"`` — the toy
  scenario (Figure 2) on a generated catalog;
* ``python -m repro auction --lots 2000 --query "antique clock"`` — the
  auction scenario (Figure 3) on a generated auction graph;
* ``python -m repro experts --query-topic 0`` — the expert-finding scenario;
* ``python -m repro spinql "<program>"`` — compile a SpinQL program and print
  its PRA plan and SQL translation;
* ``python -m repro explain "<program>"`` — the full
  :meth:`~repro.engine.query.Query.explain` report (raw plan, optimized
  plan, SQL).

Every subcommand accepts ``--json`` for machine-readable output and
``--top-k``: on the scenario subcommands it bounds the ranked answer (a
synonym of ``--top``); on ``spinql``/``explain`` it wraps the program in a
``TOP k`` node so the reports show where the optimizer pushes it.  The
scenario subcommands print the strategy diagram with ``--show-strategy``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import Any

from repro.engine import Engine
from repro.workloads import (
    generate_auction_triples,
    generate_expert_triples,
    generate_product_triples,
)


def _emit_run(command: str, run, args: argparse.Namespace, extra: dict[str, Any] | None = None) -> None:
    """Print a strategy run as text or JSON, honouring ``--json`` and ``--top``."""
    results = run.top(args.top)
    if args.json:
        payload: dict[str, Any] = {
            "command": command,
            "query": run.query,
            "elapsed_ms": run.elapsed_seconds * 1000.0,
            "results": [{"node": node, "p": probability} for node, probability in results],
        }
        if extra:
            payload.update(extra)
        print(json.dumps(payload, indent=2))
        return
    print(f"query: {run.query!r}  ({run.elapsed_seconds * 1000:.1f} ms)")
    for node, probability in results:
        print(f"  {node:<14} p = {probability:.4f}")


def _run_scenario(
    args: argparse.Namespace,
    command: str,
    engine: Engine,
    strategy_name: str,
    query: str,
    extra: dict[str, Any] | None = None,
    **builder_kwargs: Any,
) -> int:
    strategy_query = engine.strategy(strategy_name, query=query, **builder_kwargs)
    if args.show_strategy and not args.json:
        print(strategy_query.explain())
    run = strategy_query.execute()
    _emit_run(command, run, args, extra)
    return 0


def _cmd_toy(args: argparse.Namespace) -> int:
    workload = generate_product_triples(args.products, seed=args.seed)
    engine = Engine.from_triples(workload.triples)
    query = args.query
    if not query:
        target = workload.products_in_category(args.category)
        if not target:
            print(f"no products in category {args.category!r}", file=sys.stderr)
            return 1
        query = " ".join(workload.descriptions[target[0]].split()[:3])
    return _run_scenario(args, "toy", engine, "toy", query, category=args.category)


def _cmd_auction(args: argparse.Namespace) -> int:
    workload = generate_auction_triples(args.lots, seed=args.seed)
    engine = Engine.from_triples(workload.triples)
    query = args.query or " ".join(workload.lot_descriptions["lot1"].split()[:3])
    return _run_scenario(
        args,
        "auction",
        engine,
        "auction",
        query,
        lot_weight=args.lot_weight,
        auction_weight=args.auction_weight,
    )


def _cmd_experts(args: argparse.Namespace) -> int:
    workload = generate_expert_triples(args.people, args.documents, seed=args.seed)
    engine = Engine.from_triples(workload.triples)
    extra: dict[str, Any] | None = None
    if args.query:
        query = args.query
    else:
        topic = workload.topics[args.query_topic % len(workload.topics)]
        query = workload.query_for_topic(topic)
        true_experts = workload.experts_on(topic)
        extra = {"topic": topic, "true_experts": true_experts}
        if not args.json:
            print(f"(query drawn from {topic}: true experts = {true_experts})")
    return _run_scenario(args, "experts", engine, "experts", query, extra)


def _cmd_spinql(args: argparse.Namespace) -> int:
    from repro.spinql import to_sql

    query = Engine().spinql(args.program)
    plan, optimized = query.plans(top_k=args.top_k)
    sql = to_sql(optimized, view_name=args.view_name)
    if args.json:
        print(
            json.dumps(
                {
                    "command": "spinql",
                    "pra_plan": plan.describe(),
                    "optimized_plan": optimized.describe(),
                    "sql": sql,
                },
                indent=2,
            )
        )
        return 0
    print("PRA plan:")
    print(plan.describe())
    print("\nSQL translation:")
    print(sql)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    query = Engine().spinql(args.program)
    if args.json:
        print(
            json.dumps(
                {"command": "explain", **query.explain_data(top_k=args.top_k)}, indent=2
            )
        )
        return 0
    print(query.explain(top_k=args.top_k))
    return 0


def _add_common(parser: argparse.ArgumentParser, *, top: bool = True) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON output"
    )
    if top:
        parser.add_argument(
            "--top",
            "--top-k",
            dest="top",
            type=int,
            default=10,
            help="how many ranked answers to print (rank-aware top-k)",
        )
    else:
        parser.add_argument(
            "--top-k",
            dest="top_k",
            type=int,
            default=None,
            help="wrap the program in a TOP k node and show where it is pushed",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Industrial-strength IR on databases — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    toy = subparsers.add_parser("toy", help="the toy scenario (Figure 2)")
    toy.add_argument("--products", type=int, default=400)
    toy.add_argument("--category", default="toy")
    toy.add_argument("--query", default="")
    toy.add_argument("--seed", type=int, default=21)
    toy.add_argument("--show-strategy", action="store_true")
    _add_common(toy)
    toy.set_defaults(handler=_cmd_toy)

    auction = subparsers.add_parser("auction", help="the auction scenario (Figure 3)")
    auction.add_argument("--lots", type=int, default=2000)
    auction.add_argument("--query", default="")
    auction.add_argument("--lot-weight", type=float, default=0.7)
    auction.add_argument("--auction-weight", type=float, default=0.3)
    auction.add_argument("--seed", type=int, default=37)
    auction.add_argument("--show-strategy", action="store_true")
    _add_common(auction)
    auction.set_defaults(handler=_cmd_auction)

    experts = subparsers.add_parser("experts", help="the expert-finding scenario")
    experts.add_argument("--people", type=int, default=60)
    experts.add_argument("--documents", type=int, default=500)
    experts.add_argument("--query", default="")
    experts.add_argument("--query-topic", type=int, default=0)
    experts.add_argument("--seed", type=int, default=77)
    experts.add_argument("--show-strategy", action="store_true")
    _add_common(experts)
    experts.set_defaults(handler=_cmd_experts)

    spinql = subparsers.add_parser("spinql", help="compile a SpinQL program")
    spinql.add_argument("program")
    spinql.add_argument("--view-name", default=None)
    _add_common(spinql, top=False)
    spinql.set_defaults(handler=_cmd_spinql)

    explain = subparsers.add_parser(
        "explain", help="full explain report for a SpinQL program"
    )
    explain.add_argument("program")
    _add_common(explain, top=False)
    explain.set_defaults(handler=_cmd_explain)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
