"""Standard rank-based effectiveness metrics.

All functions take a ranked list of document identifiers (best first) and a
set (or graded mapping) of relevant documents, and return a float in
``[0, 1]``.  They are deliberately free of any engine dependency so they can
score the output of the keyword search engine, a strategy run, or any plain
list produced elsewhere.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence, Set
from typing import Any


def _relevant_set(relevant: Set[Any] | Mapping[Any, float]) -> set[Any]:
    if isinstance(relevant, Mapping):
        return {doc for doc, grade in relevant.items() if grade > 0}
    return set(relevant)


def precision_at_k(
    ranked: Sequence[Any], relevant: Set[Any] | Mapping[Any, float], k: int
) -> float:
    """Fraction of the top-``k`` results that are relevant."""
    if k <= 0:
        return 0.0
    relevant_docs = _relevant_set(relevant)
    top = list(ranked)[:k]
    if not top:
        return 0.0
    hits = sum(1 for doc in top if doc in relevant_docs)
    return hits / k


def recall_at_k(ranked: Sequence[Any], relevant: Set[Any] | Mapping[Any, float], k: int) -> float:
    """Fraction of all relevant documents found in the top-``k``."""
    relevant_docs = _relevant_set(relevant)
    if not relevant_docs:
        return 0.0
    top = set(list(ranked)[:k])
    return len(top & relevant_docs) / len(relevant_docs)


def average_precision(ranked: Sequence[Any], relevant: Set[Any] | Mapping[Any, float]) -> float:
    """Mean of the precision values at each relevant document's rank."""
    relevant_docs = _relevant_set(relevant)
    if not relevant_docs:
        return 0.0
    hits = 0
    total = 0.0
    for position, doc in enumerate(ranked, start=1):
        if doc in relevant_docs:
            hits += 1
            total += hits / position
    return total / len(relevant_docs)


def reciprocal_rank(ranked: Sequence[Any], relevant: Set[Any] | Mapping[Any, float]) -> float:
    """1 / rank of the first relevant result (0 if none is found)."""
    relevant_docs = _relevant_set(relevant)
    for position, doc in enumerate(ranked, start=1):
        if doc in relevant_docs:
            return 1.0 / position
    return 0.0


def ndcg_at_k(ranked: Sequence[Any], relevant: Set[Any] | Mapping[Any, float], k: int) -> float:
    """Normalised discounted cumulative gain at ``k``.

    Graded judgments (a mapping of document to gain) are supported; a plain
    set is treated as binary gains of 1.
    """
    if k <= 0:
        return 0.0
    if isinstance(relevant, Mapping):
        gains = {doc: float(grade) for doc, grade in relevant.items() if grade > 0}
    else:
        gains = {doc: 1.0 for doc in relevant}
    if not gains:
        return 0.0

    def dcg(sequence: Sequence[Any]) -> float:
        total = 0.0
        for position, doc in enumerate(list(sequence)[:k], start=1):
            gain = gains.get(doc, 0.0)
            if gain > 0:
                total += (2.0**gain - 1.0) / math.log2(position + 1)
        return total

    ideal_order = sorted(gains, key=lambda doc: gains[doc], reverse=True)
    ideal = dcg(ideal_order)
    if ideal == 0:
        return 0.0
    return dcg(ranked) / ideal


def mean_metric(values: Sequence[float]) -> float:
    """Arithmetic mean of per-query metric values (0 for an empty list)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
