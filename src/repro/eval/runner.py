"""Run query sets against engines or strategies and aggregate effectiveness.

The runner pairs the metrics of :mod:`repro.eval.metrics` with the qrels of
:mod:`repro.eval.qrels` and produces per-query and mean results for either a
:class:`~repro.ir.search.KeywordSearchEngine` or a strategy executed by a
:class:`~repro.strategy.executor.StrategyExecutor`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.eval.metrics import (
    average_precision,
    mean_metric,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.eval.qrels import Qrels


@dataclass
class QueryResult:
    """Effectiveness of one query."""

    query: str
    metrics: dict[str, float]
    num_results: int
    num_relevant: int


@dataclass
class EvaluationReport:
    """Per-query results plus means over the query set."""

    per_query: list[QueryResult] = field(default_factory=list)
    cutoff: int = 10

    @property
    def num_queries(self) -> int:
        return len(self.per_query)

    def mean(self, metric: str) -> float:
        """Mean of one metric over all evaluated queries."""
        return mean_metric([result.metrics[metric] for result in self.per_query])

    def means(self) -> dict[str, float]:
        """Means of every metric."""
        if not self.per_query:
            return {}
        return {name: self.mean(name) for name in self.per_query[0].metrics}

    def to_rows(self) -> list[tuple[str, float, float, float, float, float]]:
        """Rows of (query, P@k, R@k, AP, nDCG@k, RR) for reporting tables."""
        rows = []
        for result in self.per_query:
            metrics = result.metrics
            rows.append(
                (
                    result.query,
                    metrics[f"precision@{self.cutoff}"],
                    metrics[f"recall@{self.cutoff}"],
                    metrics["average_precision"],
                    metrics[f"ndcg@{self.cutoff}"],
                    metrics["reciprocal_rank"],
                )
            )
        return rows


def _score_ranking(
    query: str,
    ranked_documents: Sequence[Any],
    relevant: dict[Any, float],
    cutoff: int,
) -> QueryResult:
    metrics = {
        f"precision@{cutoff}": precision_at_k(ranked_documents, relevant, cutoff),
        f"recall@{cutoff}": recall_at_k(ranked_documents, relevant, cutoff),
        "average_precision": average_precision(ranked_documents, relevant),
        f"ndcg@{cutoff}": ndcg_at_k(ranked_documents, relevant, cutoff),
        "reciprocal_rank": reciprocal_rank(ranked_documents, relevant),
    }
    return QueryResult(
        query=query,
        metrics=metrics,
        num_results=len(ranked_documents),
        num_relevant=len(relevant),
    )


def evaluate_ranking(
    retrieve: Callable[[str], Sequence[Any]],
    qrels: Qrels,
    *,
    cutoff: int = 10,
) -> EvaluationReport:
    """Evaluate an arbitrary retrieval function over every judged query.

    ``retrieve`` maps a query string to a ranked list of document identifiers
    (best first).
    """
    report = EvaluationReport(cutoff=cutoff)
    for query in qrels.queries():
        ranked = list(retrieve(query))
        report.per_query.append(_score_ranking(query, ranked, qrels.relevant_for(query), cutoff))
    return report


def evaluate_strategy(
    executor: Any,
    strategy: Any,
    qrels: Qrels,
    *,
    cutoff: int = 10,
    top_k: int = 100,
) -> EvaluationReport:
    """Evaluate a strategy: each judged query is executed and its ranked nodes scored."""

    def retrieve(query: str) -> Sequence[Any]:
        run = executor.run(strategy, query=query)
        return [node for node, _ in run.top(top_k)]

    return evaluate_ranking(retrieve, qrels, cutoff=cutoff)
