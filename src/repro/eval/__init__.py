"""Retrieval-effectiveness evaluation.

The paper's introduction motivates the platform with complex search tasks
(enterprise search, expert finding, recommendation) whose quality ultimately
matters as much as latency.  This package provides the standard effectiveness
machinery needed to evaluate the reproduction's strategies and ranking
models on the synthetic workloads:

* :mod:`repro.eval.qrels` — relevance judgments (qrels) and judgment builders
  for the synthetic workloads (where ground truth is known by construction);
* :mod:`repro.eval.metrics` — precision/recall at k, average precision, MRR,
  and nDCG over ranked lists;
* :mod:`repro.eval.runner` — run a query set through a search engine or a
  strategy and aggregate per-query metrics.
"""

from repro.eval.metrics import (
    average_precision,
    mean_metric,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.eval.qrels import Qrels, judgments_from_auctions
from repro.eval.runner import EvaluationReport, evaluate_ranking, evaluate_strategy

__all__ = [
    "EvaluationReport",
    "Qrels",
    "average_precision",
    "evaluate_ranking",
    "evaluate_strategy",
    "judgments_from_auctions",
    "mean_metric",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
]
