"""Relevance judgments (qrels) and judgment builders for synthetic workloads.

Real relevance judgments for the paper's customer data are unavailable; the
synthetic workloads, however, know their own ground truth by construction —
for the auction graph, the lots of an auction share a controlled fraction of
their description terms with it.  :func:`judgments_from_auctions` exploits
that: for a query drawn from one auction's distinctive vocabulary, the lots
of that auction are the relevant set.  This gives the effectiveness
benchmarks a deterministic, documented notion of relevance.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.auctions import AuctionWorkload


@dataclass
class Qrels:
    """Relevance judgments: per query, a mapping of document to graded relevance."""

    judgments: dict[str, dict[Any, float]] = field(default_factory=dict)

    def add(self, query: str, document: Any, grade: float = 1.0) -> None:
        """Record that ``document`` is relevant to ``query`` with ``grade``."""
        if grade < 0:
            raise WorkloadError("relevance grades must be non-negative")
        self.judgments.setdefault(query, {})[document] = grade

    def relevant_for(self, query: str) -> dict[Any, float]:
        """The graded relevant documents of ``query`` (empty dict if unjudged)."""
        return dict(self.judgments.get(query, {}))

    def queries(self) -> list[str]:
        return list(self.judgments)

    def num_judgments(self) -> int:
        return sum(len(docs) for docs in self.judgments.values())

    def __contains__(self, query: str) -> bool:
        return query in self.judgments

    def __len__(self) -> int:
        return len(self.judgments)


def judgments_from_auctions(
    workload: "AuctionWorkload",
    *,
    queries_per_auction: int = 1,
    terms_per_query: int = 2,
    max_auctions: int | None = None,
) -> Qrels:
    """Build qrels from the auction workload's construction-time ground truth.

    For each auction, queries are drawn from the terms that occur in *its*
    description and in no other auction's description (its distinctive
    vocabulary); the relevant documents of such a query are the lots belonging
    to that auction (grade 1.0).  Auctions without enough distinctive terms
    are skipped.
    """
    if queries_per_auction < 1 or terms_per_query < 1:
        raise WorkloadError("queries_per_auction and terms_per_query must be positive")
    qrels = Qrels()
    auction_terms: dict[str, list[str]] = {
        auction: workload.auction_descriptions[auction].split()
        for auction in workload.auction_ids
    }
    term_owners: dict[str, set[str]] = {}
    for auction, terms in auction_terms.items():
        for term in terms:
            term_owners.setdefault(term, set()).add(auction)

    auctions: Iterable[str] = workload.auction_ids
    if max_auctions is not None:
        auctions = list(workload.auction_ids)[:max_auctions]

    for auction in auctions:
        distinctive = [
            term for term in auction_terms[auction] if term_owners[term] == {auction}
        ]
        # deduplicate while keeping order
        distinctive = list(dict.fromkeys(distinctive))
        if len(distinctive) < terms_per_query:
            continue
        lots = workload.lots_in_auction(auction)
        for query_index in range(queries_per_auction):
            start = query_index * terms_per_query
            terms = distinctive[start : start + terms_per_query]
            if len(terms) < terms_per_query:
                break
            query = " ".join(terms)
            for lot in lots:
                qrels.add(query, lot, 1.0)
    return qrels


def judgments_from_mapping(mapping: Mapping[str, Iterable[Any]]) -> Qrels:
    """Build binary qrels from ``{query: [relevant documents]}``."""
    qrels = Qrels()
    for query, documents in mapping.items():
        for document in documents:
            qrels.add(query, document, 1.0)
    return qrels
