"""The workload subsystem: logging, replay, cost modelling, result caching.

The ROADMAP's "workload-aware engine" item in four cooperating parts —
each usable on its own, designed to feed each other:

* :mod:`repro.workload.log` — a bounded, lock-guarded ring buffer of
  structured :class:`~repro.workload.log.WorkloadRecord` entries (plan
  fingerprint, parameters, latency, rows in/out, cache hits, executor,
  shard fan-out), with an optional JSONL sink.  Every
  ``Query.execute``/``top`` and every serving-router request appends one;
  ``engine.workload_log``, ``GET /statz`` and ``repro workload`` expose it.
* :mod:`repro.workload.replay` — a replay/load-generation harness: replay
  a recorded log verbatim, or synthesize traffic from it with Zipfian
  skew over the observed request templates, under open- or closed-loop
  arrival.  A fixed seed yields a byte-identical schedule
  (:meth:`~repro.workload.replay.Schedule.schedule_hash`), so load tests
  are reproducible; reports carry throughput and p50/p95/p99.
* :mod:`repro.workload.cost` — a per-operator cost model: cardinality
  estimates from catalog metadata, per-kernel coefficients fitted from
  logged latencies (:meth:`~repro.workload.cost.CostModel.calibrate`).
  ``explain`` surfaces the estimate; the optimizer and the scatter-gather
  executor consult it for TOP-pushdown and scatter-vs-coordinator
  decisions.  Every steered choice is between result-identical plans —
  the cost model can change *speed*, never *answers* (Hypothesis-enforced).
* :mod:`repro.workload.cache` — an adaptive result cache keyed by
  (plan fingerprint, bound parameters): size-bounded, lock-guarded,
  invalidated by table dependency exactly like the plan cache, admitting
  a key only once its fingerprint repeats (one-shot queries never evict
  hot entries).  Cached results are bit-identical to recomputation.

The JSONL record schema is part of the public API surface — see the
stability policy in :mod:`repro`.
"""

from repro.workload.cache import ResultCache, ResultCacheStatistics, binding_fingerprint
from repro.workload.cost import CostEstimate, CostModel
from repro.workload.log import (
    WorkloadLog,
    WorkloadRecord,
    load_records,
    summarize,
    top_fingerprints,
)
from repro.workload.replay import (
    EngineTarget,
    HttpTarget,
    LoadReport,
    RequestSpec,
    RouterTarget,
    Schedule,
    replay_schedule,
    run_schedule,
    synthesize_schedule,
)

__all__ = [
    "CostEstimate",
    "CostModel",
    "EngineTarget",
    "HttpTarget",
    "LoadReport",
    "RequestSpec",
    "ResultCache",
    "ResultCacheStatistics",
    "RouterTarget",
    "Schedule",
    "WorkloadLog",
    "WorkloadRecord",
    "binding_fingerprint",
    "load_records",
    "replay_schedule",
    "run_schedule",
    "summarize",
    "synthesize_schedule",
    "top_fingerprints",
]
