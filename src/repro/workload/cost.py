"""A calibrated per-operator cost model for PRA plans.

The estimator walks a plan bottom-up, carrying a cardinality estimate per
node (base-table rows from catalog metadata, textbook selectivities for
predicates and joins) and charging each node *work units* — the rows it
processes.  Total estimated latency is the unit-weighted sum of per-kind
coefficients::

    estimated_ms = sum(coefficients[kind] * units[kind] for kind in plan)

The coefficients start as rough per-row constants and are **calibrated**
from the workload log: every logged record carries its plan's per-kind
unit vector, so :meth:`CostModel.calibrate` solves the least-squares
system ``units @ coefficients ≈ latency_ms`` over the observed traffic and
adopts the fit (clamped to stay positive).  The more an engine serves, the
better its estimates match *its* hardware and *its* data.

Two optimizer decisions consult the model — both choices between
result-identical plans, so the model can change speed, never answers:

* **TOP pushdown** (:func:`repro.pra.optimizer.optimize_pra`): pushing
  ``TOP k`` below a weight or into a union duplicates work when the child
  is already tiny; with ``top_pushdown_threshold > 0`` the rewrite is
  skipped for children estimated below the threshold.
* **scatter vs coordinator** (:class:`~repro.engine.executors.ScatterGatherExecutor`):
  fanning a segment out to every shard costs fixed per-shard overhead;
  with ``scatter_threshold > 0`` segments over tables estimated below the
  threshold run gathered on the coordinator instead.

Both thresholds default to ``0`` — the calibrated model is opt-in steering
and a default engine behaves exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraParam,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraValues,
    PraWeight,
)
from repro.relational.expressions import BinaryOp, Expression, UnaryOp

#: ms per processed row, per operator kind — deliberately rough priors;
#: calibration replaces them with fitted values for the engine's own traffic
DEFAULT_COEFFICIENTS: dict[str, float] = {
    "scan": 0.00002,
    "values": 0.00002,
    "param": 0.00002,
    "select": 0.00005,
    "project": 0.00008,
    "join": 0.00010,
    "unite": 0.00008,
    "subtract": 0.00008,
    "bayes": 0.00008,
    "weight": 0.00002,
    "top": 0.00004,
}

#: assumed rows for tables/parameters the catalog cannot size without I/O
DEFAULT_UNKNOWN_ROWS = 1000.0

_EQUALITY_SELECTIVITY = 0.1
_COMPARISON_SELECTIVITY = 0.33
_JOIN_CONDITION_SELECTIVITY = 0.05

CardinalityFn = Callable[[str], float | None]


def _selectivity(expression: Expression) -> float:
    """A textbook selectivity estimate for a predicate expression."""
    if isinstance(expression, BinaryOp):
        op = expression.op.lower()
        if op == "and":
            return _selectivity(expression.left) * _selectivity(expression.right)
        if op == "or":
            left, right = _selectivity(expression.left), _selectivity(expression.right)
            return min(1.0, left + right - left * right)
        if op in ("=", "=="):
            return _EQUALITY_SELECTIVITY
        if op in ("!=", "<>"):
            return 1.0 - _EQUALITY_SELECTIVITY
        if op in ("<", "<=", ">", ">="):
            return _COMPARISON_SELECTIVITY
    if isinstance(expression, UnaryOp) and expression.op.lower() == "not":
        return 1.0 - _selectivity(expression.operand)
    return 0.5


@dataclass
class NodeEstimate:
    """The estimate for one plan node (children inlined for rendering)."""

    kind: str
    label: str
    rows: float
    units: float
    children: list["NodeEstimate"] = field(default_factory=list)

    def render(self, indent: int = 0) -> list[str]:
        lines = [
            "  " * indent
            + f"{self.label}  rows~{self.rows:.0f}  units~{self.units:.0f}"
        ]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


@dataclass
class CostEstimate:
    """A whole-plan estimate: output cardinality, per-kind work, total ms."""

    root: NodeEstimate
    per_kind_units: dict[str, float]
    estimated_ms: float

    @property
    def output_rows(self) -> float:
        return self.root.rows

    @property
    def total_units(self) -> float:
        return sum(self.per_kind_units.values())

    def describe(self) -> str:
        lines = self.root.render()
        lines.append(
            f"estimated: {self.estimated_ms:.3f} ms over ~{self.total_units:.0f} row-units"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "estimated_ms": self.estimated_ms,
            "output_rows": self.output_rows,
            "total_units": self.total_units,
            "per_kind_units": dict(sorted(self.per_kind_units.items())),
            "plan": self.root.render(),
        }


class CostModel:
    """Per-operator cost estimation with coefficients fitted from logs."""

    def __init__(
        self,
        coefficients: dict[str, float] | None = None,
        *,
        top_pushdown_threshold: float = 0.0,
        scatter_threshold: float = 0.0,
        default_rows: float = DEFAULT_UNKNOWN_ROWS,
    ):
        self.coefficients = dict(DEFAULT_COEFFICIENTS)
        if coefficients:
            self.coefficients.update(coefficients)
        self.top_pushdown_threshold = top_pushdown_threshold
        self.scatter_threshold = scatter_threshold
        self.default_rows = default_rows
        self.calibrated_from = 0  # records the last calibration consumed

    # -- estimation --------------------------------------------------------------

    def estimate(
        self, plan: PraPlan, cardinality: CardinalityFn | None = None
    ) -> CostEstimate:
        """Estimate ``plan`` with base-table rows from ``cardinality``.

        ``cardinality`` maps a table name to its row count, or ``None``
        when sizing it would require I/O (lazy snapshot tables) — those
        fall back to :attr:`default_rows`.
        """
        units: dict[str, float] = {}
        root = self._estimate_node(plan, cardinality or (lambda name: None), units)
        estimated = sum(
            self.coefficients.get(kind, 0.0) * value for kind, value in units.items()
        )
        return CostEstimate(root=root, per_kind_units=units, estimated_ms=estimated)

    def _estimate_node(
        self,
        plan: PraPlan,
        cardinality: CardinalityFn,
        units: dict[str, float],
    ) -> NodeEstimate:
        children = [
            self._estimate_node(child, cardinality, units) for child in plan.children()
        ]

        def charge(kind: str, rows: float, work: float, label: str | None = None) -> NodeEstimate:
            units[kind] = units.get(kind, 0.0) + work
            return NodeEstimate(
                kind=kind,
                label=label if label is not None else kind,
                rows=rows,
                units=work,
                children=children,
            )

        if isinstance(plan, PraScan):
            rows = cardinality(plan.table)
            rows = self.default_rows if rows is None else float(rows)
            return charge("scan", rows, rows, label=f"scan({plan.table})")
        if isinstance(plan, PraValues):
            rows = float(plan.relation.num_rows)
            return charge("values", rows, rows)
        if isinstance(plan, PraParam):
            return charge("param", self.default_rows, self.default_rows)
        if isinstance(plan, PraSelect):
            in_rows = children[0].rows
            return charge("select", in_rows * _selectivity(plan.predicate), in_rows)
        if isinstance(plan, PraProject):
            in_rows = children[0].rows
            return charge("project", in_rows, in_rows)
        if isinstance(plan, PraJoin):
            left, right = children[0].rows, children[1].rows
            selectivity = _JOIN_CONDITION_SELECTIVITY ** max(1, len(plan.conditions))
            out = max(1.0, left * right * selectivity) if left and right else 0.0
            return charge("join", out, left + right + out)
        if isinstance(plan, PraUnite):
            total = children[0].rows + children[1].rows
            return charge("unite", total, total)
        if isinstance(plan, PraSubtract):
            total = children[0].rows + children[1].rows
            return charge("subtract", children[0].rows, total)
        if isinstance(plan, PraBayes):
            in_rows = children[0].rows
            return charge("bayes", in_rows, in_rows)
        if isinstance(plan, PraWeight):
            in_rows = children[0].rows
            return charge("weight", in_rows, in_rows)
        if isinstance(plan, PraTop):
            in_rows = children[0].rows
            return charge("top", min(in_rows, float(plan.k)), in_rows)
        rows = children[0].rows if children else self.default_rows
        return charge("other", rows, rows)

    # -- decisions ---------------------------------------------------------------

    def should_push_top(self, child_rows: float | None) -> bool:
        """True when pushing a ``TOP`` towards ``child_rows`` rows pays off.

        With the default threshold of 0 this is always true — exactly the
        pre-cost-model behaviour.  Unknown cardinalities always push (the
        rewrite is result-preserving either way, and pushing is the safe
        default for large inputs).
        """
        if self.top_pushdown_threshold <= 0 or child_rows is None:
            return True
        return child_rows >= self.top_pushdown_threshold

    def should_scatter(self, table_rows: float | None) -> bool:
        """True when scattering a segment over ``table_rows`` rows pays off."""
        if self.scatter_threshold <= 0 or table_rows is None:
            return True
        return table_rows >= self.scatter_threshold

    # -- calibration -------------------------------------------------------------

    def calibrate(self, records: Iterable[Any], *, min_samples: int = 8) -> bool:
        """Fit per-kind coefficients from logged ``(cost_units, latency)`` pairs.

        Solves the least-squares system over every record that carries a
        unit vector; returns True if enough samples were present and the
        coefficients were updated.  Fitted values are clamped to a small
        positive floor — a kernel can be fast, never free or negative.
        """
        import numpy as np

        samples = [
            (entry.cost_units, entry.latency_ms)
            for entry in records
            if getattr(entry, "cost_units", None) and entry.status == "ok"
        ]
        if len(samples) < min_samples:
            return False
        kinds = sorted({kind for units, _latency in samples for kind in units})
        if not kinds:
            return False
        matrix = np.array(
            [[units.get(kind, 0.0) for kind in kinds] for units, _latency in samples],
            dtype=np.float64,
        )
        latencies = np.array([latency for _units, latency in samples], dtype=np.float64)
        solution, *_rest = np.linalg.lstsq(matrix, latencies, rcond=None)
        floor = 1e-9
        for kind, value in zip(kinds, solution):
            self.coefficients[kind] = max(float(value), floor)
        self.calibrated_from = len(samples)
        return True

    def describe(self) -> dict[str, Any]:
        return {
            "coefficients": dict(sorted(self.coefficients.items())),
            "top_pushdown_threshold": self.top_pushdown_threshold,
            "scatter_threshold": self.scatter_threshold,
            "calibrated_from": self.calibrated_from,
        }
