"""The adaptive result cache: evaluated relations keyed by plan + parameters.

Where the :class:`~repro.engine.plan_cache.PlanCache` memoizes *plans*, this
cache memoizes *results*: the :class:`~repro.pra.relation.ProbabilisticRelation`
an optimized plan evaluated to, keyed by ``(plan fingerprint, binding
fingerprint)``.  A hit skips the executor entirely — no scatter, no worker
round-trip — and returns the exact relation object computed before, so a
cached answer is bit-identical to recomputation by construction (property
tests enforce it end to end).

**Adaptive admission.**  A result is only *stored* once its plan
fingerprint has been seen ``admission_threshold`` times (default: twice).
One-shot queries — ad-hoc exploration, unique parameter values — therefore
never evict the entries that are actually hot; the fingerprint sighting
counts live in a bounded LRU of their own, so the admission tracker cannot
grow without bound either.

**Invalidation.**  Entries record the base tables their plan scans (the
same ``scan_tables`` dependency set the plan cache uses), and the engine
calls :meth:`ResultCache.invalidate_table` from exactly the hooks that
invalidate the plan cache — ``create_table``, triple-store reload,
``clear_caches`` — so a cached result can never outlive the data it was
computed from.

Thread safety matches the plan cache: one re-entrant lock guards every
lookup, insert, invalidation and counter update.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

from repro.pra.relation import ProbabilisticRelation


@dataclass
class ResultCacheStatistics:
    """Counters describing result-cache effectiveness."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    admitted: int = 0
    bypassed: int = 0  # stores skipped by the admission policy
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "admitted": self.admitted,
            "bypassed": self.bypassed,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _ResultEntry:
    value: ProbabilisticRelation
    dependencies: frozenset[str] = field(default_factory=frozenset)
    uses: int = 0


def binding_fingerprint(
    bindings: Mapping[str, ProbabilisticRelation] | None,
) -> str | None:
    """A deterministic key for a set of bound parameter relations.

    Returns ``None`` when any bound relation cannot be fingerprinted by
    content — the caller must then treat the execution as uncacheable
    rather than risk serving a stale or wrong answer.
    """
    if not bindings:
        return ""
    parts: list[str] = []
    for name in sorted(bindings):
        value = bindings[name]
        try:
            content: Hashable = value.relation.content_fingerprint()
        except Exception:  # noqa: BLE001 - unhashable content => uncacheable
            return None
        parts.append(f"{name}={content}")
    return ";".join(parts)


class ResultCache:
    """A size-bounded, lock-guarded, dependency-invalidated result cache."""

    def __init__(self, max_entries: int = 256, *, admission_threshold: int = 2):
        if max_entries < 1:
            raise ValueError("result cache max_entries must be >= 1")
        if admission_threshold < 1:
            raise ValueError("admission_threshold must be >= 1")
        self.max_entries = max_entries
        self.admission_threshold = admission_threshold
        self._entries: OrderedDict[tuple[str, str], _ResultEntry] = OrderedDict()
        # fingerprint -> sighting count; bounded so ad-hoc traffic cannot
        # grow the admission tracker without limit
        self._sightings: OrderedDict[str, int] = OrderedDict()
        self._sightings_capacity = max(max_entries * 4, 64)
        self._lock = threading.RLock()
        self.statistics = ResultCacheStatistics()

    # -- lookup / store ----------------------------------------------------------

    def lookup(self, key: tuple[str, str]) -> ProbabilisticRelation | None:
        """The cached result for ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.statistics.misses += 1
                return None
            self.statistics.hits += 1
            entry.uses += 1
            self._entries.move_to_end(key)
            return entry.value

    def store(
        self,
        key: tuple[str, str],
        value: ProbabilisticRelation,
        *,
        dependencies: frozenset[str] = frozenset(),
    ) -> bool:
        """Offer a computed result; returns True if it was admitted.

        Admission is adaptive: the result is kept only once the plan
        fingerprint's sighting count reaches ``admission_threshold`` (the
        lookup that preceded this store counts as one sighting).
        """
        fingerprint = key[0]
        with self._lock:
            if key in self._entries:
                return True  # a concurrent execution already stored it
            count = self._sightings.get(fingerprint, 0) + 1
            self._sightings[fingerprint] = count
            self._sightings.move_to_end(fingerprint)
            while len(self._sightings) > self._sightings_capacity:
                self._sightings.popitem(last=False)
            if count < self.admission_threshold:
                self.statistics.bypassed += 1
                return False
            self._entries[key] = _ResultEntry(value=value, dependencies=dependencies)
            self.statistics.admitted += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.statistics.evictions += 1
            self.statistics.entries = len(self._entries)
            return True

    # -- invalidation ------------------------------------------------------------

    def invalidate_table(self, table_name: str) -> int:
        """Drop every cached result whose plan depends on ``table_name``."""
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if table_name in entry.dependencies
            ]
            for key in stale:
                del self._entries[key]
            self.statistics.invalidations += len(stale)
            self.statistics.entries = len(self._entries)
            return len(stale)

    def clear(self) -> None:
        """Drop every cached result and the admission sighting counts."""
        with self._lock:
            self.statistics.invalidations += len(self._entries)
            self._entries.clear()
            self._sightings.clear()
            self.statistics.entries = 0

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        with self._lock:
            return key in self._entries
