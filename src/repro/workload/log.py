"""The workload log: a bounded ring buffer of structured query records.

Every executed query — SpinQL/builder plans, keyword searches, strategy
runs, serving-router requests — appends one :class:`WorkloadRecord` to the
engine's :class:`WorkloadLog`.  The log is the observability substrate the
rest of :mod:`repro.workload` feeds on: the replay harness rebuilds request
templates from the ``request`` payloads, and the cost model fits its
per-operator coefficients to the ``cost_units``/``latency_ms`` pairs.

Design constraints (RL006 enforces the first two repo-wide):

* **bounded** — the buffer is a ``collections.deque(maxlen=capacity)``;
  a long-running server can never grow it without bound.  Records evicted
  from the ring are still counted (``statistics()["appended"]``) and, with
  a JSONL sink attached, still on disk.
* **lock-guarded** — one engine is shared by many threads; every mutation
  (sequence assignment, append, sink write) runs under one lock.
* **no wall clock** — records carry a monotonic sequence number instead of
  a timestamp, so a replayed log is byte-identical run to run (RL004's
  no-wall-clock rule extends to this package).  Latencies are measured by
  callers with ``time.perf_counter``.
"""

from __future__ import annotations

import json
import threading
from collections import Counter, deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, IO

#: the shape every record serialises to; see the stability note in ``repro``.
#: v2 (additive, 1.8): ``collapsed`` — "leader"/"follower" under in-flight
#: request collapsing, ``None`` for requests that executed alone
RECORD_SCHEMA_VERSION = 2

DEFAULT_CAPACITY = 2048


@dataclass(frozen=True)
class WorkloadRecord:
    """One executed request, as the engine saw it.

    ``request`` is the replayable payload (the same dict shapes the serving
    router accepts), present for the front-end kinds the replay harness can
    re-issue; internal evaluations carry ``None``.
    """

    seq: int
    kind: str  # "plan" | "search" | "strategy" | "serve"
    fingerprint: str
    latency_ms: float
    rows_out: int | None = None
    rows_in: int | None = None
    parameters: str | None = None  # binding fingerprint, if any were bound
    request: dict[str, Any] | None = None
    result_cache: str | None = None  # "hit" | "miss" | "bypass" | None (off)
    executor: str | None = None
    shard_fanout: int = 0
    status: str = "ok"
    cost_units: dict[str, float] = field(default_factory=dict)
    collapsed: str | None = None  # "leader" | "follower" | None (ran alone)

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["v"] = RECORD_SCHEMA_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WorkloadRecord":
        known = set(cls.__dataclass_fields__)
        return cls(**{key: value for key, value in payload.items() if key in known})


class WorkloadLog:
    """A thread-safe ring buffer of :class:`WorkloadRecord` entries.

    The ring keeps the most recent ``capacity`` records; ``attach_sink``
    additionally streams every record to a JSONL file as it is appended,
    so a full trace survives the ring's eviction.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *, sink: str | Path | None = None):
        if capacity < 1:
            raise ValueError("workload log capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[WorkloadRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_seq = 0
        self._appended = 0
        self._sink: IO[str] | None = None
        self._sink_path: Path | None = None
        if sink is not None:
            self.attach_sink(sink)

    # -- recording ---------------------------------------------------------------

    def record(self, kind: str, fingerprint: str, latency_ms: float, **fields: Any) -> WorkloadRecord:
        """Append one record; the sequence number is assigned atomically."""
        with self._lock:
            entry = WorkloadRecord(
                seq=self._next_seq,
                kind=kind,
                fingerprint=fingerprint,
                latency_ms=float(latency_ms),
                **fields,
            )
            self._next_seq += 1
            self._appended += 1
            self._records.append(entry)
            if self._sink is not None:
                self._sink.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
                self._sink.flush()
        return entry

    # -- sinks -------------------------------------------------------------------

    def attach_sink(self, path: str | Path) -> None:
        """Stream every future record to ``path`` as JSON lines (appending)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
            self._sink_path = Path(path)
            self._sink = self._sink_path.open("a", encoding="utf-8")

    def close(self) -> None:
        """Detach and close the sink, if any; the ring stays readable."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None
                self._sink_path = None

    # -- reading -----------------------------------------------------------------

    def snapshot(self) -> list[WorkloadRecord]:
        """The ring's current records, oldest first."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def statistics(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._records),
                "appended": self._appended,
                "evicted": self._appended - len(self._records),
                "sink": str(self._sink_path) if self._sink_path is not None else None,
            }

    def export(self, path: str | Path) -> Path:
        """Write the ring's current records to ``path`` as JSON lines."""
        records = self.snapshot()
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for entry in records:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        return target

    def summary(self, *, top: int = 10) -> dict[str, Any]:
        """Aggregate statistics over the ring (see :func:`summarize`)."""
        payload = summarize(self.snapshot(), top=top)
        payload["log"] = self.statistics()
        return payload

    def top_fingerprints(self, n: int = 10) -> list[dict[str, Any]]:
        return top_fingerprints(self.snapshot(), n)


# ---------------------------------------------------------------------------
# standalone record analytics (shared by WorkloadLog, the CLI, and tests)
# ---------------------------------------------------------------------------


def load_records(path: str | Path) -> list[WorkloadRecord]:
    """Read a JSONL export (``WorkloadLog.export`` or a sink file)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(WorkloadRecord.from_dict(json.loads(line)))
    return records


def latency_percentiles(latencies_ms: list[float]) -> dict[str, float]:
    """Nearest-rank p50/p95/p99 plus the mean, in milliseconds."""
    if not latencies_ms:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
    ordered = sorted(latencies_ms)

    def rank(q: float) -> float:
        index = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return float(ordered[index])

    return {
        "p50_ms": rank(0.50),
        "p95_ms": rank(0.95),
        "p99_ms": rank(0.99),
        "mean_ms": float(sum(ordered) / len(ordered)),
    }


def top_fingerprints(records: list[WorkloadRecord], n: int = 10) -> list[dict[str, Any]]:
    """The ``n`` most frequent fingerprints with count and latency totals."""
    counts: Counter[str] = Counter(entry.fingerprint for entry in records)
    totals: dict[str, float] = {}
    kinds: dict[str, str] = {}
    for entry in records:
        totals[entry.fingerprint] = totals.get(entry.fingerprint, 0.0) + entry.latency_ms
        kinds.setdefault(entry.fingerprint, entry.kind)
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:n]
    return [
        {
            "fingerprint": fingerprint,
            "kind": kinds[fingerprint],
            "count": count,
            "total_ms": totals[fingerprint],
            "mean_ms": totals[fingerprint] / count,
        }
        for fingerprint, count in ranked
    ]


def summarize(records: list[WorkloadRecord], *, top: int = 10) -> dict[str, Any]:
    """Counts, latency percentiles, cache hit rates and hot fingerprints."""
    by_kind = Counter(entry.kind for entry in records)
    by_status = Counter(entry.status for entry in records)
    cache = Counter(entry.result_cache for entry in records if entry.result_cache)
    lookups = cache.get("hit", 0) + cache.get("miss", 0)
    return {
        "records": len(records),
        "by_kind": dict(sorted(by_kind.items())),
        "by_status": dict(sorted(by_status.items())),
        "latency": latency_percentiles([entry.latency_ms for entry in records]),
        "result_cache": {
            "hits": cache.get("hit", 0),
            "misses": cache.get("miss", 0),
            "bypassed": cache.get("bypass", 0),
            "hit_rate": (cache.get("hit", 0) / lookups) if lookups else 0.0,
        },
        "shard_fanout_max": max((entry.shard_fanout for entry in records), default=0),
        "collapsed": {
            "leaders": sum(1 for entry in records if entry.collapsed == "leader"),
            "followers": sum(1 for entry in records if entry.collapsed == "follower"),
        },
        "top_fingerprints": top_fingerprints(records, top),
    }
