"""Replay and load generation: turn a workload log back into traffic.

Two ways to build a :class:`Schedule`:

* :func:`replay_schedule` — re-issue a recorded log verbatim, in its
  original order;
* :func:`synthesize_schedule` — generate ``num_requests`` requests from
  the log's distinct request templates with **Zipfian skew** (templates
  ranked by observed frequency; template at rank ``r`` drawn with
  probability proportional to ``1 / r**zipf_s``) under **closed-loop**
  (fixed concurrency, next request starts when a slot frees) or
  **open-loop** (seeded exponential inter-arrivals at ``rate_qps``,
  requests start on schedule regardless of completions) arrival.

Schedules are deterministic: the same log, seed and parameters produce an
identical request sequence, and :meth:`Schedule.schedule_hash` (SHA-256
over the canonical JSON of the schedule) makes that checkable from CI —
two runs agree on the hash or one of them is wrong.

:func:`run_schedule` drives a schedule against any *target* — an
in-process engine (:class:`EngineTarget`), an in-process router
(:class:`RouterTarget`), or a live HTTP router (:class:`HttpTarget`) —
and reports throughput plus p50/p95/p99 latency in a :class:`LoadReport`.
Open-loop latency is measured from the request's *scheduled* arrival, so
queueing delay under overload is visible (the coordinated-omission-safe
convention).
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
import urllib.error
import urllib.request
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.workload.log import WorkloadRecord, latency_percentiles

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import Engine
    from repro.serving.router import Router

#: request kinds the harness knows how to re-issue
REPLAYABLE_KINDS = ("spinql", "search", "strategy")


@dataclass(frozen=True)
class RequestSpec:
    """One request to issue: a router-shaped payload plus its arrival time."""

    request: dict[str, Any]
    offset_ms: float = 0.0  # scheduled arrival; 0 under closed-loop

    def canonical(self) -> str:
        return json.dumps(
            {"request": self.request, "offset_ms": round(self.offset_ms, 6)},
            sort_keys=True,
        )


@dataclass
class Schedule:
    """A deterministic request sequence plus the knobs that produced it."""

    requests: list[RequestSpec]
    mode: str = "closed"  # "closed" | "open"
    seed: int | None = None
    zipf_s: float | None = None
    rate_qps: float | None = None

    def schedule_hash(self) -> str:
        """SHA-256 over the canonical schedule; equal hash ⇔ equal schedule."""
        digest = hashlib.sha256()
        digest.update(self.mode.encode("utf-8"))
        for spec in self.requests:
            digest.update(spec.canonical().encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def describe(self) -> dict[str, Any]:
        return {
            "requests": len(self.requests),
            "mode": self.mode,
            "seed": self.seed,
            "zipf_s": self.zipf_s,
            "rate_qps": self.rate_qps,
            "schedule_hash": self.schedule_hash(),
        }


@dataclass
class LoadReport:
    """What one schedule run measured."""

    completed: int
    errors: int
    elapsed_seconds: float
    latency: dict[str, float]
    mode: str
    concurrency: int
    results_digest: str = ""

    @property
    def throughput_qps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "completed": self.completed,
            "errors": self.errors,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_qps": self.throughput_qps,
            "latency": dict(self.latency),
            "mode": self.mode,
            "concurrency": self.concurrency,
            "results_digest": self.results_digest,
        }


# ---------------------------------------------------------------------------
# schedule construction
# ---------------------------------------------------------------------------


def request_templates(records: Sequence[WorkloadRecord]) -> list[tuple[dict[str, Any], int]]:
    """Distinct replayable request payloads with observed frequencies.

    Templates are ordered by descending frequency (canonical JSON breaks
    ties), so template rank — the Zipf variable — is deterministic.
    """
    counts: dict[str, int] = {}
    payloads: dict[str, dict[str, Any]] = {}
    for entry in records:
        request = entry.request
        if not request or request.get("kind") not in REPLAYABLE_KINDS:
            continue
        key = json.dumps(request, sort_keys=True)
        counts[key] = counts.get(key, 0) + 1
        payloads.setdefault(key, request)
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [(payloads[key], count) for key, count in ranked]


def replay_schedule(records: Sequence[WorkloadRecord]) -> Schedule:
    """A schedule that re-issues the log's replayable requests in order."""
    requests = [
        RequestSpec(request=entry.request)
        for entry in records
        if entry.request and entry.request.get("kind") in REPLAYABLE_KINDS
    ]
    if not requests:
        raise ReproError("no replayable requests in the log")
    return Schedule(requests=requests, mode="closed")


def synthesize_schedule(
    records: Sequence[WorkloadRecord],
    *,
    num_requests: int,
    seed: int,
    mode: str = "closed",
    zipf_s: float = 1.1,
    rate_qps: float = 50.0,
) -> Schedule:
    """Generate traffic shaped like the log, deterministically from ``seed``."""
    if mode not in ("closed", "open"):
        raise ReproError(f"unknown arrival mode {mode!r}; use 'closed' or 'open'")
    if num_requests < 1:
        raise ReproError("num_requests must be >= 1")
    templates = request_templates(records)
    if not templates:
        raise ReproError("no replayable requests in the log to synthesize from")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(templates))]
    offset_ms = 0.0
    requests: list[RequestSpec] = []
    for _ in range(num_requests):
        template, _count = rng.choices(templates, weights=weights, k=1)[0]
        if mode == "open":
            offset_ms += rng.expovariate(rate_qps) * 1000.0
        requests.append(RequestSpec(request=dict(template), offset_ms=offset_ms))
    return Schedule(
        requests=requests, mode=mode, seed=seed, zipf_s=zipf_s, rate_qps=rate_qps
    )


# ---------------------------------------------------------------------------
# targets
# ---------------------------------------------------------------------------


class EngineTarget:
    """Issue requests straight into an :class:`~repro.engine.Engine`."""

    def __init__(self, engine: "Engine"):
        self.engine = engine

    def __call__(self, request: dict[str, Any]) -> dict[str, Any]:
        kind = request.get("kind")
        top_k = request.get("top_k")
        if kind == "spinql":
            query = self.engine.spinql(request["source"])
            if top_k is not None:
                return {"ok": True, "results": query.top(top_k)}
            return {"ok": True, "rows": query.execute().num_rows}
        if kind == "search":
            search = self.engine.search(request.get("table", "docs"), request["query"])
            if top_k is not None:
                return {"ok": True, "results": search.top(top_k)}
            return {"ok": True, "rows": len(search.execute().ranked)}
        if kind == "strategy":
            run = self.engine.strategy(request["name"], query=request.get("query", ""))
            if top_k is not None:
                return {"ok": True, "results": run.top(top_k)}
            return {"ok": True, "rows": run.execute().result.num_rows}
        return {"ok": False, "error": f"unknown request kind {kind!r}"}


class RouterTarget:
    """Issue requests through an in-process :class:`~repro.serving.Router`."""

    def __init__(self, router: "Router"):
        self.router = router

    def __call__(self, request: dict[str, Any]) -> dict[str, Any]:
        return self.router.handle(request)


class HttpTarget:
    """Issue requests against a live router's ``POST /query`` endpoint."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def __call__(self, request: dict[str, Any]) -> dict[str, Any]:
        body = json.dumps(request).encode("utf-8")
        http_request = urllib.request.Request(
            f"{self.base_url}/query",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(http_request, timeout=self.timeout) as reply:
                return json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return {"ok": False, "status": error.code, "error": str(error)}


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


def run_schedule(
    schedule: Schedule,
    target: Callable[[dict[str, Any]], dict[str, Any]],
    *,
    concurrency: int = 4,
) -> LoadReport:
    """Drive ``schedule`` against ``target`` and measure latency/throughput.

    Closed-loop: ``concurrency`` workers each take the next request as
    soon as their previous one finishes.  Open-loop: requests launch at
    their scheduled offsets (latency then includes any wait for a free
    worker, making overload visible rather than hiding it).
    """
    if concurrency < 1:
        raise ReproError("concurrency must be >= 1")
    latencies: list[float] = [0.0] * len(schedule.requests)
    outcomes: list[bool] = [False] * len(schedule.requests)
    digests: list[str] = [""] * len(schedule.requests)

    def issue(index: int, spec: RequestSpec, scheduled_start: float) -> None:
        reply = target(spec.request)
        finished = time.perf_counter()
        latencies[index] = (finished - scheduled_start) * 1000.0
        outcomes[index] = bool(reply.get("ok"))
        digests[index] = _digest_reply(reply)

    started = time.perf_counter()
    if schedule.mode == "open":
        threads: list[threading.Thread] = []
        slots = threading.Semaphore(concurrency)

        def launch(index: int, spec: RequestSpec, scheduled_start: float) -> None:
            with slots:
                issue(index, spec, scheduled_start)

        for index, spec in enumerate(schedule.requests):
            scheduled = started + spec.offset_ms / 1000.0
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            thread = threading.Thread(
                target=launch, args=(index, spec, scheduled), daemon=True
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
    else:
        next_index = 0
        index_lock = threading.Lock()

        def worker() -> None:
            nonlocal next_index
            while True:
                with index_lock:
                    if next_index >= len(schedule.requests):
                        return
                    index = next_index
                    next_index += 1
                issue(index, schedule.requests[index], time.perf_counter())

        workers = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(min(concurrency, len(schedule.requests)))
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
    elapsed = time.perf_counter() - started

    digest = hashlib.sha256()
    for item in digests:
        digest.update(item.encode("utf-8"))
        digest.update(b"\n")
    return LoadReport(
        completed=sum(outcomes),
        errors=len(outcomes) - sum(outcomes),
        elapsed_seconds=elapsed,
        latency=latency_percentiles(list(latencies)),
        mode=schedule.mode,
        concurrency=concurrency,
        results_digest=digest.hexdigest(),
    )


def _digest_reply(reply: dict[str, Any]) -> str:
    """A canonical digest of a reply's *answer* (results/rows, not timing)."""
    payload = {
        "ok": bool(reply.get("ok")),
        "results": reply.get("results"),
        "rows": reply.get("rows"),
    }
    try:
        return json.dumps(payload, sort_keys=True, default=str)
    except (TypeError, ValueError):
        return repr(payload)
