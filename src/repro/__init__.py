"""repro: Industrial-strength Information Retrieval on Databases.

A from-scratch Python reproduction of the platform described in

    Cornacchia, Hildebrand, de Vries, Dorssers.
    "Challenges for industrial-strength Information Retrieval on Databases."
    EDBT/ICDT 2017 workshops.

The package is organised along the paper's sections:

* :mod:`repro.relational` — the columnar relational engine (the MonetDB
  stand-in);
* :mod:`repro.text` — tokenizer and stemmers (the paper's two UDFs);
* :mod:`repro.ir` — keyword search as relational queries (Section 2.1);
* :mod:`repro.triples` — the flexible triple data model and partitioning
  strategies (Section 2.2);
* :mod:`repro.pra` — the probabilistic relational algebra with tuple-level
  uncertainty (Section 2.3);
* :mod:`repro.spinql` — the SpinQL query language and its SQL translation
  (Section 2.3);
* :mod:`repro.strategy` — block-based search strategies (Section 2.4), with
  the toy (Figure 2) and auction (Figure 3) strategies pre-built;
* :mod:`repro.workloads` — synthetic data generators standing in for the
  paper's proprietary collections;
* :mod:`repro.bench` — the benchmark harness.

Quickstart::

    from repro.triples import TripleStore
    from repro.strategy import StrategyExecutor, build_toy_strategy
    from repro.workloads import generate_product_triples

    store = TripleStore()
    store.add_all(generate_product_triples(500).triples)
    store.load()

    strategy = build_toy_strategy(category="toy")
    run = StrategyExecutor(store).run(strategy, query="wooden train set")
    print(run.top(10))
"""

from repro.errors import ReproError
from repro.relational import Database, Relation
from repro.pra import ProbabilisticRelation
from repro.triples import TripleStore
from repro.ir import KeywordSearchEngine
from repro.strategy import StrategyExecutor, StrategyGraph, build_auction_strategy, build_toy_strategy

__version__ = "1.0.0"

__all__ = [
    "Database",
    "KeywordSearchEngine",
    "ProbabilisticRelation",
    "Relation",
    "ReproError",
    "StrategyExecutor",
    "StrategyGraph",
    "TripleStore",
    "build_auction_strategy",
    "build_toy_strategy",
    "__version__",
]
