"""repro: Industrial-strength Information Retrieval on Databases.

A from-scratch Python reproduction of the platform described in

    Cornacchia, Hildebrand, de Vries, Dorssers.
    "Challenges for industrial-strength Information Retrieval on Databases."
    EDBT/ICDT 2017 workshops.

Quickstart — one engine, every front end::

    from repro import connect

    engine = connect().load_triples(
        [
            ("product1", "category", "toy"),
            ("product1", "description", "wooden train set for children"),
            ("product2", "category", "toy"),
            ("product2", "description", "plastic toy car with remote control"),
        ]
    )
    for node, p in engine.strategy("toy", query="wooden train").top(5):
        print(node, p)

The package is organised along the paper's sections:

* :mod:`repro.engine` — **the public API**: the :class:`Engine` facade and
  lazy :class:`~repro.engine.query.Query` objects over every front end;
* :mod:`repro.relational` — the columnar relational engine (the MonetDB
  stand-in);
* :mod:`repro.text` — tokenizer and stemmers (the paper's two UDFs);
* :mod:`repro.ir` — keyword search as relational queries (Section 2.1);
* :mod:`repro.triples` — the flexible triple data model and partitioning
  strategies (Section 2.2);
* :mod:`repro.pra` — the probabilistic relational algebra with tuple-level
  uncertainty (Section 2.3);
* :mod:`repro.spinql` — the SpinQL query language and its SQL translation
  (Section 2.3);
* :mod:`repro.strategy` — block-based search strategies (Section 2.4), with
  the toy (Figure 2) and auction (Figure 3) strategies pre-built;
* :mod:`repro.analysis` — static analysis, new in 1.4: a plan verifier
  (schema/type/assumption inference with typed diagnostics, surfaced as
  ``Query.check()`` / ``Engine.analyze()`` / the ``check`` CLI subcommand
  and a serving pre-dispatch gate), the duplicate-freeness lattice, the
  shard-safety classification the executors consume, and the repo-invariant
  lint engine behind ``scripts/repro_lint.py``;
* :mod:`repro.storage` — persistent columnar snapshots: versioned,
  memmap-backed serialization of the whole engine state
  (``Engine.save``/``Engine.open``), new in 1.2; partitioned (sharded)
  snapshots (``Engine.save(path, shards=N)``) new in 1.3;
* :mod:`repro.serving` — multi-process serving, new in 1.3: worker pools
  over sharded snapshots, scatter-gather executors, and an
  admission-controlled HTTP router (``python -m repro serve``); 1.7 adds
  shard replicas with transparent failover, a self-healing worker
  supervisor, online re-sharding (``python -m repro reshard``), and the
  unified :class:`~repro.serving.ServingConfig`; 1.8 adds the
  micro-batching data plane — coalesced wire frames, vectorized
  multi-query search, and in-flight request collapsing, all
  result-invisible by construction;
* :mod:`repro.workload` — workload awareness, new in 1.5: a bounded query
  log with a JSONL sink (``Engine.workload_log``, ``GET /statz``), a
  deterministic replay/load generator (verbatim or Zipf-synthesized,
  closed- or open-loop), a calibrated per-operator cost model consulted by
  the optimizer and the scatter-gather executor, and an adaptive
  result cache (``Engine.result_cache``) whose answers are bit-identical
  to recomputation by construction;
* :mod:`repro.workloads` — synthetic data generators standing in for the
  paper's proprietary collections;
* :mod:`repro.bench` — the benchmark harness.

Deprecation and stability policy
--------------------------------

:class:`Engine` / :func:`connect` are the supported entry points from
version 1.1 on.  The hand-wired layer entry points re-exported below
(``Database``, ``TripleStore``, ``KeywordSearchEngine``,
``StrategyExecutor``, …) remain importable and functional — they are what
the facade itself is built from — but new cross-layer features (batching,
caching, routing) land on the facade only.  Shims are kept for at least two
minor versions after an entry point is superseded, and removals are
announced in ``CHANGES.md``.

The storage API (``save``/``open`` on :class:`Engine`,
:class:`~repro.relational.database.Database`,
:class:`~repro.triples.triple_store.TripleStore`,
:class:`~repro.ir.inverted_index.InvertedIndex` and
:class:`~repro.ir.statistics.CollectionStatistics`, plus the functions in
:mod:`repro.storage`) is **stable** from 1.2: the Python signatures follow
the deprecation policy above.  The *on-disk format* is versioned
separately via ``repro.storage.FORMAT_VERSION``; snapshots are only
guaranteed readable by the library version that wrote them, and a mismatch
raises :class:`~repro.errors.SnapshotVersionError` with a "rebuild or
upgrade" message rather than guessing at layouts.  Treat snapshots as a
fast boot medium, not an archival format — the CSV/text sources stay
canonical.

Version 1.3 bumps ``FORMAT_VERSION`` to 2 for the partitioned layout
(shard maps, per-shard row-index relations, statistics split by document
partition).  Version-1 snapshots are refused with the "rebuild or upgrade"
message — re-save them from source data (``Engine.save``) or read them
with a 1.2 library; there is no in-place migration, by policy: snapshots
are cheap to rebuild and silent partial upgrades are not.

The diagnostics API (:func:`repro.analysis.verify_plan`,
:class:`~repro.analysis.AnalysisReport`,
:class:`~repro.analysis.Diagnostic`, ``Query.check()``,
``Engine.analyze()``) is **stable** from 1.4 under the same policy.
Diagnostic *codes* and the report/dict shapes are append-only: codes are
never renamed or removed, an error never silently becomes a warning, and
new codes may appear in any minor release.  The human-readable message
*text* is not part of the stable surface — match on ``Diagnostic.code``
and ``severity``, not on message strings.  The lint rule names
(``RL001``–``RL006``) follow the same append-only rule.

The workload-record schema (:class:`repro.workload.WorkloadRecord` and the
JSONL lines ``WorkloadLog.export`` writes) is **stable** from 1.5 and
versioned in-band: every line carries a ``v`` field, fields are
append-only, and readers (``load_records``) ignore fields they do not
know, so logs written by newer minors stay replayable by older ones.
Record ``kind`` values (``plan``/``search``/``strategy``/``serve``, plus
``event`` for serving lifecycle records from 1.7) and fingerprint prefixes
follow the same append-only rule.  Latencies and schedule hashes are
derived from monotonic clocks and canonical JSON only — never from
wall-clock time — so exported logs and ``Schedule.schedule_hash()`` values
are comparable across hosts and runs.

Version 1.7 unifies serving configuration under one frozen dataclass,
:class:`repro.serving.ServingConfig`: every serving entry point
(:class:`~repro.serving.WorkerPool`, ``Engine.open_sharded``,
:class:`~repro.serving.Router`, the ``serve``/``reshard`` CLI) accepts
``config=ServingConfig(...)``.  The superseded per-call keyword arguments
(``workers=``, ``mmap=``, ``transport=``, ``shm_threshold=``,
``max_concurrent=``, ``max_queue=``) keep working **unchanged** through a
shim that emits one :class:`DeprecationWarning` per entry point per
process; per the policy above the shim stays for at least two minor
versions (i.e. through 1.9), and passing both ``config=`` and a legacy
keyword is an error rather than a silent merge.

Version 1.8 adds the micro-batching data plane (coalesced wire frames,
vectorized multi-query search, in-flight request collapsing), all of it
**result-invisible by contract**: a batch of one is byte-identical to an
unbatched frame, batched execution is bit-identical to request-at-a-time
execution, and collapsing returns the leader's exact reply — behavior
differences are bugs, not configuration surprises.  The workload-record
schema moves to ``v`` = 2 by appending one field (``collapsed``:
``"leader"``/``"follower"``/absent), which v1 readers ignore per the
append-only rule above.
"""

from repro.errors import EngineError, ReproError
from repro.engine import (
    Engine,
    PlanCache,
    Query,
    SearchQuery,
    SpinQLQuery,
    StrategyQuery,
    TableQuery,
    connect,
)
from repro.relational import Database, Relation
from repro.pra import ProbabilisticRelation
from repro.triples import TripleStore
from repro.ir import KeywordSearchEngine
from repro.strategy import (
    StrategyExecutor,
    StrategyGraph,
    build_auction_strategy,
    build_toy_strategy,
)

__version__ = "1.8.0"

__all__ = [
    # the public facade
    "Engine",
    "EngineError",
    "PlanCache",
    "Query",
    "SearchQuery",
    "SpinQLQuery",
    "StrategyQuery",
    "TableQuery",
    "connect",
    # layer entry points (supported; see the deprecation policy above)
    "Database",
    "KeywordSearchEngine",
    "ProbabilisticRelation",
    "Relation",
    "ReproError",
    "StrategyExecutor",
    "StrategyGraph",
    "TripleStore",
    "build_auction_strategy",
    "build_toy_strategy",
    "__version__",
]
