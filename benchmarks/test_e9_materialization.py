"""E9 — Section 2.1/2.2: materialising query-independent intermediate results.

"Most of the SQL queries above are independent of query-terms, which allows
to materialize intermediate results for reuse" — this benchmark quantifies
that claim for the statistics views of the BM25 pipeline and for triple-store
sub-queries: first materialisation vs. repeated use, and the cache counters
that the engine maintains.
"""

from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.engine import Engine
from repro.ir.statistics import RelationalStatisticsBuilder
from repro.relational.database import Database
from repro.workloads import generate_collection, generate_queries


def test_e9_statistics_views_first_vs_repeat(benchmark):
    collection = generate_collection(600, average_length=30, seed=3)
    db = Database()
    db.create_table("docs", collection.to_relation())
    builder = RelationalStatisticsBuilder(db, "docs")

    first = measure_latency(builder.materialize, repetitions=1)
    repeat = measure_latency(builder.materialize, repetitions=3)

    table = ResultTable(
        "E9 — materialising the query-independent statistics views (600 docs)",
        ["measurement", "mean (ms)", "cache entries", "hits", "misses"],
    )
    stats = db.cache.statistics
    table.add_row(
        "first materialisation (cold)", first.mean_ms, stats.entries, stats.hits, stats.misses
    )
    table.add_row(
        "repeated materialisation (hot)", repeat.mean_ms, stats.entries, stats.hits, stats.misses
    )
    table.print()

    assert repeat.mean_ms < first.mean_ms
    benchmark(builder.materialize)


def test_e9_query_latency_hot_vs_cold_engine(benchmark):
    """End-to-end: per-query latency with and without reusable statistics.

    Both paths go through the facade: the cold path opens a fresh session per
    query (statistics rebuilt each time), the hot path reuses one engine whose
    cached search statistics stay warm across queries.
    """
    collection = generate_collection(1000, average_length=40, seed=5)
    queries = generate_queries(collection.vocabulary, 6, terms_per_query=3, seed=2)
    engine = Engine().create_table("docs", collection.to_relation())

    def cold_query():
        fresh = Engine(engine.database)
        return fresh.search("docs", queries.queries[0], top_k=10).execute()

    hot_query = engine.search("docs", top_k=10)
    hot_query.execute(query=queries.queries[0])  # warm the statistics

    cold = measure_latency(cold_query, repetitions=2)
    hot = measure_latency(
        lambda: hot_query.execute(query=queries.queries[1]), repetitions=6, warmup=1
    )

    table = ResultTable(
        "E9 — per-query cost with and without materialised statistics (1000 docs)",
        ["state", "mean (ms)", "speedup vs cold"],
    )
    table.add_row("cold (statistics rebuilt per query)", cold.mean_ms, 1.0)
    table.add_row("hot (statistics reused)", hot.mean_ms, cold.mean_ms / max(hot.mean_ms, 1e-9))
    table.print()

    assert hot.mean_ms < cold.mean_ms
    benchmark(lambda: hot_query.execute(query=queries.queries[2]))


def test_e9_cache_invalidation_on_update(benchmark):
    """Updating the base table invalidates exactly the dependent materialisations."""
    collection = generate_collection(300, average_length=30, seed=8)
    db = Database()
    db.create_table("docs", collection.to_relation())
    builder = RelationalStatisticsBuilder(db, "docs")
    builder.materialize()
    entries_before = len(db.cache)
    db.create_table("unrelated", collection.to_relation())
    assert len(db.cache) == entries_before  # unrelated table does not invalidate
    db.create_table("docs", collection.to_relation(), replace=True)
    assert len(db.cache) < entries_before  # dependent entries dropped

    benchmark(builder.materialize)
