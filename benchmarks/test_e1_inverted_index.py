"""E1 — Figure 1: the inverted index as a relation, term lookup as a join.

Reproduces the figure's artifact (posting lists / the (term, doc, pos)
relation) and measures the two operations it illustrates: building the index
on demand and looking terms up via a relational join.
"""

import pytest

from repro.bench.reporting import ResultTable
from repro.ir.inverted_index import InvertedIndex, term_lookup_join
from repro.relational.database import Database
from repro.text.analyzers import StandardAnalyzer


@pytest.fixture(scope="module")
def documents(text_collection):
    return text_collection.documents[:500]


@pytest.fixture(scope="module")
def built_index(documents):
    return InvertedIndex.from_documents(documents, StandardAnalyzer())


def test_e1_build_index_on_demand(benchmark, documents):
    """On-demand index construction over 500 synthetic documents."""
    index = benchmark(InvertedIndex.from_documents, documents, StandardAnalyzer())
    assert index.num_documents == len(documents)


def test_e1_term_lookup_join(benchmark, built_index, text_collection):
    """Figure 1b: query terms joined against the (term, doc, pos) relation."""
    database = Database()
    index_relation = built_index.to_relation()
    frequent = text_collection.vocabulary.frequent_terms(3)

    result = benchmark(term_lookup_join, database, index_relation, frequent)
    assert result.num_rows > 0

    table = ResultTable(
        "E1 — Figure 1: term lookup as a join (500 docs)",
        ["query term", "df (docs)", "postings (rows)"],
    )
    for term in frequent:
        table.add_row(
            term, built_index.document_frequency(term), len(built_index.posting_list(term))
        )
    table.print()


def test_e1_posting_lists_match_relation(built_index):
    """The posting lists and the relational form describe the same occurrences."""
    relation = built_index.to_relation()
    assert relation.num_rows == sum(
        len(built_index.posting_list(term)) for term in built_index.vocabulary
    )
