"""E10 — rank-aware top-k and concurrent batch execution.

The paper's production deployment answers every request with a *ranked page*
— nobody reads 8M ranked lots — and serves peaks of 450 requests/minute.
This benchmark measures the two serving-side mechanisms this reproduction
adds for that shape of load:

* **rank-aware ``top(k)``**: the auction strategy's ranked relation, scaled
  to production-like cardinality, answered through the ``np.argpartition``
  partial-sort kernel versus the full deterministic sort a naive ``top``
  performs;
* **TOP pushdown**: the weighted SUBSUMED mix evaluated with the optimizer's
  pushed-down ``TOP`` (each branch pruned before the union) versus full
  materialisation of the mix followed by sort-and-slice;
* **concurrent ``execute_many``**: one parameterized traversal replayed over
  a batch of seed sets, serial versus a 4-worker thread pool.

The ``>= 2x`` thread-scaling assertion only runs where it is physically
possible: threads need at least 4 usable cores *and* a calibration probe
showing that numpy kernels actually release the GIL on this machine (CI
containers are often pinned to one core, where every thread pool is a
slowdown).  The correctness assertions — identical results, deterministic
ordering — always run.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.pra.assumptions import Assumption
from repro.pra.evaluator import PRAEvaluator
from repro.pra.optimizer import optimize_pra
from repro.pra.plan import PraProject, PraTop, PraUnite, PraValues, PraWeight
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import Column, DataType
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

#: production stand-in cardinality for the ranked-relation kernels
SCALED_ROWS = 200_000
TOP_K = 10
WORKERS = 4


@pytest.fixture(scope="module")
def scaled_auction_ranking(auction_engine, auction_workload_bench):
    """The auction strategy's ranked relation, tiled to production-like size.

    The strategy runs once at bench scale (3000 lots); its ranked result is
    then replicated with distinct node suffixes and deterministically
    jittered probabilities, preserving the real score distribution's shape.
    """
    query = " ".join(auction_workload_bench.lot_descriptions["lot1"].split()[:3])
    run = auction_engine.strategy("auction", query=query).execute()
    nodes = run.result.relation.column(run.result.value_columns[0]).to_list()
    probabilities = run.result.probabilities()

    rng = np.random.default_rng(1729)
    repeats = SCALED_ROWS // len(nodes) + 1
    tiled_nodes = np.array(
        [f"{node}~{copy}" for copy in range(repeats) for node in nodes],
        dtype=object,
    )[:SCALED_ROWS]
    tiled_p = np.tile(probabilities, repeats)[:SCALED_ROWS]
    jitter = rng.uniform(0.5, 1.0, SCALED_ROWS)
    tiled_p = np.clip(tiled_p * jitter, 0.0, 1.0)

    schema = Schema([Field("node", DataType.STRING), Field("p", DataType.FLOAT)])
    relation = Relation(
        schema,
        [Column(tiled_nodes, DataType.STRING), Column(tiled_p, DataType.FLOAT)],
    )
    return ProbabilisticRelation(relation, validate=False)


def test_e10_topk_vs_full_sort(benchmark, scaled_auction_ranking):
    """``top(10)`` on the (scaled) auction ranking vs the full-sort baseline."""
    ranking = scaled_auction_ranking

    def full_sort_baseline():
        return ProbabilisticRelation(
            ranking.sorted_by_probability().relation.head(TOP_K), validate=False
        )

    def rank_aware():
        return ranking.top(TOP_K)

    assert list(rank_aware().rows()) == list(full_sort_baseline().rows())

    baseline = measure_latency(full_sort_baseline, repetitions=3, warmup=1)
    partial = measure_latency(rank_aware, repetitions=3, warmup=1)
    # min is robust against one-sided noise (GC pauses, CPU steal on shared
    # CI runners only ever add time), so the asserted ratio never flakes low
    speedup = baseline.min_ms / partial.min_ms

    table = ResultTable(
        f"E10 — top({TOP_K}) over the auction ranking at {SCALED_ROWS:,} rows",
        ["path", "mean (ms)", "speedup"],
    )
    table.add_row("full deterministic sort + slice", f"{baseline.min_ms:.2f}", "1.0x")
    table.add_row("argpartition top-k kernel", f"{partial.min_ms:.2f}", f"{speedup:.1f}x")
    table.print()

    assert speedup >= 3.0

    benchmark(rank_aware)


def test_e10_top_pushdown_through_mix(benchmark, scaled_auction_ranking):
    """The weighted mix under a pushed-down TOP vs full materialisation."""
    ranking = scaled_auction_ranking

    def branch(weight_factor):
        # PROJECT SUBSUMED merges duplicate lots, making the side provably
        # duplicate-free — the precondition for pushing TOP into the union
        return PraWeight(
            PraProject(
                PraValues(ranking, label="branch"),
                [1],
                Assumption.SUBSUMED,
                output_names=["node"],
            ),
            weight_factor,
        )

    plan = PraTop(PraUnite(branch(0.7), branch(0.3), Assumption.SUBSUMED), TOP_K)
    optimized = optimize_pra(plan)
    # the pushdown must have pruned both branches below their weights
    assert "TOP" in optimized.children()[0].children()[0].describe()

    evaluator = PRAEvaluator(Database())

    def full_materialisation():
        mixed = evaluator.evaluate(plan.child)
        return ProbabilisticRelation(
            mixed.sorted_by_probability().relation.head(TOP_K), validate=False
        )

    def pushed_down():
        return evaluator.evaluate(optimized)

    assert list(pushed_down().rows()) == list(full_materialisation().rows())

    naive = measure_latency(full_materialisation, repetitions=3, warmup=0)
    pushed = measure_latency(pushed_down, repetitions=3, warmup=0)
    speedup = naive.min_ms / pushed.min_ms

    table = ResultTable(
        f"E10 — TOP pushdown through the weighted mix ({SCALED_ROWS:,} rows/branch)",
        ["path", "mean (ms)", "speedup"],
    )
    table.add_row("materialise mix, sort, slice", f"{naive.min_ms:.1f}", "1.0x")
    table.add_row("TOP pushed into both branches", f"{pushed.min_ms:.1f}", f"{speedup:.1f}x")
    table.print()

    assert speedup >= 3.0

    benchmark(pushed_down)


# ---------------------------------------------------------------------------
# Concurrent batch execution
# ---------------------------------------------------------------------------


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _thread_scaling_probe() -> float:
    """Measured speedup of 4 threads running a GIL-releasing numpy kernel."""
    rng = np.random.default_rng(7)
    arrays = [rng.random(1_000_000) for _ in range(WORKERS)]

    def work(values):
        return np.sort(values)

    started = time.perf_counter()
    for values in arrays:
        work(values)
    serial = time.perf_counter() - started

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        started = time.perf_counter()
        list(pool.map(work, arrays))
        parallel = time.perf_counter() - started
    return serial / parallel if parallel > 0 else 0.0


def test_e10_concurrent_execute_many(benchmark, auction_engine, auction_workload_bench):
    """4-worker ``execute_many`` vs serial on a parameterized traversal."""
    lots = auction_workload_bench.lot_ids
    rng = np.random.default_rng(99)
    batches = [
        {"seeds": [lots[index] for index in rng.integers(0, len(lots), 4000)]}
        for _ in range(12)
    ]
    query = auction_engine.spinql(
        "auctions = TRAVERSE ['hasAuction'] (seeds);", seeds=[]
    )
    query.execute(seeds=batches[0]["seeds"])  # warm compile + caches

    serial_started = time.perf_counter()
    serial_results = query.execute_many(batches)
    serial_seconds = time.perf_counter() - serial_started

    concurrent_started = time.perf_counter()
    concurrent_results = query.execute_many(batches, max_workers=WORKERS)
    concurrent_seconds = time.perf_counter() - concurrent_started

    # deterministic ordering: element i of the concurrent run answers batch i
    assert [sorted(map(tuple, result.rows())) for result in concurrent_results] == [
        sorted(map(tuple, result.rows())) for result in serial_results
    ]

    speedup = serial_seconds / concurrent_seconds if concurrent_seconds > 0 else 0.0
    cores = _usable_cores()
    probe = _thread_scaling_probe()

    table = ResultTable(
        f"E10 — execute_many over {len(batches)} parameter batches",
        ["mode", "total (ms)", "throughput (batches/s)"],
    )
    table.add_row("serial", f"{serial_seconds * 1000:.1f}", f"{len(batches) / serial_seconds:.1f}")
    table.add_row(
        f"{WORKERS} workers",
        f"{concurrent_seconds * 1000:.1f}",
        f"{len(batches) / concurrent_seconds:.1f}",
    )
    table.add_row("speedup", f"{speedup:.2f}x", f"(probe {probe:.2f}x on {cores} cores)")
    table.print()

    benchmark(lambda: query.execute_many(batches[:4], max_workers=WORKERS))

    if cores < WORKERS or probe < 2.0:
        pytest.skip(
            f"thread-scaling assertion needs >= {WORKERS} usable cores and a "
            f"GIL-releasing probe >= 2x; got {cores} cores, probe {probe:.2f}x "
            f"(measured execute_many speedup: {speedup:.2f}x)"
        )
    assert speedup >= 2.0
