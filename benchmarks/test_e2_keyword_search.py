"""E2 — Section 2.1: BM25 keyword search on the relational engine.

The paper reports ~20 ms (hot) for 3-term queries against 1.1M documents on
MonetDB.  This benchmark measures the reproduction's keyword-search latency
on synthetic collections, sweeping collection size and query length, and
separates the *cold* path (collection statistics built on demand) from the
*hot* path (statistics materialised and reused).

Expected shape: hot ≪ cold; hot latency grows with the number of query terms
and roughly linearly with the number of matching postings; absolute numbers
differ from the paper (different substrate and scale).
"""

import pytest

from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.ir import KeywordSearchEngine
from repro.relational.database import Database
from repro.workloads import generate_collection, generate_queries


@pytest.fixture(scope="module")
def hot_engine(text_database, text_queries):
    engine = KeywordSearchEngine(text_database, "docs")
    engine.warm_up()
    return engine


def test_e2_hot_three_term_query(benchmark, hot_engine, text_queries):
    """The paper's headline operation: a 3-term query with hot statistics."""
    queries = list(text_queries.queries)
    state = {"index": 0}

    def run_query():
        query = queries[state["index"] % len(queries)]
        state["index"] += 1
        return hot_engine.search(query, top_k=10)

    result = benchmark(run_query)
    assert len(result.ranked) >= 0


def test_e2_cold_statistics_build(benchmark, text_collection):
    """The cold path: building the collection statistics from scratch."""
    relation = text_collection.to_relation()

    def build():
        db = Database()
        db.create_table("docs", relation)
        engine = KeywordSearchEngine(db, "docs")
        engine.warm_up()
        return engine

    engine = benchmark.pedantic(build, rounds=3, iterations=1)
    assert engine.statistics.num_docs == text_collection.num_documents


def test_e2_sweep_collection_size_and_terms(benchmark):
    """Latency vs collection size (cold and hot) and vs number of query terms."""
    table = ResultTable(
        "E2 — keyword search latency (BM25, direct pipeline)",
        ["docs", "terms/query", "cold first query (ms)", "hot mean (ms)", "hot p95 (ms)"],
    )
    for num_docs in (250, 1000, 4000):
        collection = generate_collection(num_docs, average_length=40, seed=11)
        db = Database()
        db.create_table("docs", collection.to_relation())
        for terms_per_query in (1, 3, 5):
            queries = generate_queries(
                collection.vocabulary, 8, terms_per_query=terms_per_query, seed=terms_per_query
            )
            engine = KeywordSearchEngine(db, "docs")
            cold = measure_latency(lambda: engine.search(queries.queries[0]), repetitions=1)
            hot = measure_latency(
                lambda: engine.search(queries.queries[1 % len(queries.queries)]),
                repetitions=6,
                warmup=1,
            )
            table.add_row(num_docs, terms_per_query, cold.mean_ms, hot.mean_ms, hot.p95_ms)
    table.print()

    # keep pytest-benchmark happy with a representative hot measurement
    collection = generate_collection(1000, average_length=40, seed=11)
    db = Database()
    db.create_table("docs", collection.to_relation())
    engine = KeywordSearchEngine(db, "docs")
    engine.warm_up()
    query = " ".join(collection.vocabulary.frequent_terms(3))
    benchmark(engine.search, query)


def test_e2_relational_pipeline_agrees_with_direct(benchmark, text_database, text_queries):
    """The faithful SQL-view pipeline produces the same ranking as the direct path."""
    direct = KeywordSearchEngine(text_database, "docs", pipeline="direct")
    relational = KeywordSearchEngine(text_database, "docs", pipeline="relational")
    direct.warm_up()
    relational.warm_up()
    query = text_queries.queries[0]
    assert [d for d, _ in direct.search(query).top(10)] == [
        d for d, _ in relational.search(query).top(10)
    ]
    benchmark(relational.search, query)
