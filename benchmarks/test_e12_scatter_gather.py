"""E12 — scatter-gather top-k over an N-shard snapshot, and pool throughput.

The partition-aware engine's two acceptance claims:

* **Pushdown**: a rank-aware ``TOP k`` (and a top-k keyword search) over a
  sharded snapshot ships *at most k candidates per shard* to the gather —
  asserted from the executor's scatter report — while staying bit-identical
  to the unsharded engine;
* **Scaling**: with persistent worker processes
  (:class:`~repro.engine.executors.PoolExecutor`), concurrent query
  throughput scales over the single-process engine.  Like E10's thread
  assertion, the scaling assertion is gated on actually having cores: on a
  1-core CI container the measurement still runs and is reported, but the
  assertion is skipped.

Results land in ``BENCH_E12.json`` through the shared artifact writer.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import artifacts
from repro.bench.reporting import ResultTable
from repro.engine import Engine
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving import ServingConfig
from repro.workloads import generate_auction_triples

LOTS = 800
SHARDS = 4
SEED = 37
TOP_K = 10
STREAM = 24  # queries per throughput run


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def sharded_setup(tmp_path_factory):
    workload = generate_auction_triples(LOTS, seed=SEED)
    engine = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    engine.create_table(
        "docs",
        Relation(
            schema,
            [
                Column(list(workload.lot_descriptions.keys()), DataType.STRING),
                Column(list(workload.lot_descriptions.values()), DataType.STRING),
            ],
        ),
    )
    queries = [
        " ".join(description.split()[:3])
        for description in list(workload.lot_descriptions.values())[:STREAM]
    ]
    engine.search("docs", queries[0]).execute()  # warm stats → split into shards
    path = engine.save(tmp_path_factory.mktemp("e12") / "snapshot", shards=SHARDS)
    return engine, path, queries


def test_e12_scatter_gather_topk_candidates(benchmark, sharded_setup):
    """Per-shard candidate counts never exceed k; results stay bit-identical."""
    engine, path, queries = sharded_setup
    opened = Engine.open_sharded(path)
    try:
        program = 'out = SELECT [$2="hasAuction"] (triples);'
        expected_plan = engine.spinql(program).top(TOP_K)
        assert opened.spinql(program).top(TOP_K) == expected_plan
        plan_scatter = dict(opened._plan_executor.last_scatter)
        for counts in plan_scatter["per_shard_rows"]:
            assert all(count <= TOP_K for count in counts)

        expected_search = engine.search("docs", queries[0]).top(TOP_K)
        assert opened.search("docs", queries[0]).top(TOP_K) == expected_search
        search_scatter = dict(opened._plan_executor.last_scatter)
        assert all(count <= TOP_K for count in search_scatter["per_shard_candidates"])

        table = ResultTable(
            f"E12 — per-shard candidates for TOP {TOP_K} over {SHARDS} shards",
            ["query", "per-shard candidates", "total shipped", "bound"],
        )
        plan_counts = plan_scatter["per_shard_rows"][0]
        table.add_row("spinql TOP", str(plan_counts), sum(plan_counts), TOP_K * SHARDS)
        counts = search_scatter["per_shard_candidates"]
        table.add_row("search top-k", str(counts), sum(counts), TOP_K * SHARDS)
        table.print()

        artifacts.write_metrics(
            "E12",
            {
                "shards": SHARDS,
                "top_k": TOP_K,
                "plan_per_shard_candidates": plan_counts,
                "search_per_shard_candidates": counts,
                "bit_identical": True,
            },
        )
        benchmark(lambda: opened.spinql(program).top(TOP_K))
    finally:
        opened.close()


def _throughput(engine: Engine, queries, *, concurrency: int) -> tuple[float, list[float]]:
    """(queries/second, per-query latencies in ms) for a top-k search stream."""
    def one(query: str) -> float:
        begun = time.perf_counter()
        engine.search("docs", query).top(TOP_K)
        return (time.perf_counter() - begun) * 1000.0

    started = time.perf_counter()
    if concurrency <= 1:
        latencies = [one(query) for query in queries]
    else:
        with ThreadPoolExecutor(max_workers=concurrency) as clients:
            latencies = list(clients.map(one, queries))
    return len(queries) / (time.perf_counter() - started), latencies


def _batched_throughput(engine: Engine, queries) -> tuple[float, list[float]]:
    """(queries/second, amortized per-query latencies) via ``search_many``."""
    started = time.perf_counter()
    engine.search_many("docs", queries, top_k=TOP_K)
    elapsed = time.perf_counter() - started
    per_query_ms = elapsed * 1000.0 / len(queries)
    return len(queries) / elapsed, [per_query_ms] * len(queries)


def test_e12_pool_throughput_scaling(benchmark, sharded_setup):
    """Worker-pool throughput vs the single-process engine (core-gated)."""
    engine, path, queries = sharded_setup
    pooled = Engine.open_sharded(path, executor="pool")
    batched = Engine.open_sharded(
        path, executor="pool", config=ServingConfig(max_batch_size=16)
    )
    inline = Engine.open_sharded(
        path, executor="pool", config=ServingConfig(transport="inline")
    )
    try:
        # warm all paths (statistics merge, worker spin-up)
        engine.search("docs", queries[0]).top(TOP_K)
        for opened in (pooled, batched, inline):
            opened.search("docs", queries[0]).top(TOP_K)
        # bit-identity across every data-plane mode: batched / unbatched,
        # default (shm where available) / inline transports, vectorized
        # multi-query kernel — all against the in-process engine
        expected = engine.search("docs", queries[1]).top(TOP_K)
        assert pooled.search("docs", queries[1]).top(TOP_K) == expected
        assert batched.search("docs", queries[1]).top(TOP_K) == expected
        assert inline.search("docs", queries[1]).top(TOP_K) == expected
        many = batched.search_many("docs", queries, top_k=TOP_K)
        for query, result in zip(queries, many):
            assert result.top(TOP_K) == engine.search("docs", query).top(TOP_K)

        single, single_lat = _throughput(engine, queries, concurrency=1)
        pool_serial, pool_serial_lat = _throughput(pooled, queries, concurrency=1)
        pool_concurrent, pool_concurrent_lat = _throughput(
            pooled, queries, concurrency=SHARDS
        )
        pool_batched, pool_batched_lat = _batched_throughput(batched, queries)
        # concurrent per-query load on the batched pool: co-arriving scatters
        # share connections, so this leg exercises real wire coalescing
        batched_concurrent, batched_concurrent_lat = _throughput(
            batched, queries, concurrency=SHARDS
        )
        batching = batched._plan_executor._pool.batching()
        cores = _usable_cores()

        table = ResultTable(
            f"E12 — search throughput, {SHARDS}-shard pool vs single process "
            f"({cores} cores)",
            ["mode", "queries/s", "p50 ms", "p95 ms", "p99 ms", "vs single"],
        )
        for label, qps, latencies in (
            ("single process", single, single_lat),
            ("pool, 1 client", pool_serial, pool_serial_lat),
            (f"pool, {SHARDS} clients", pool_concurrent, pool_concurrent_lat),
            ("pool, batched search_many", pool_batched, pool_batched_lat),
            (f"batched pool, {SHARDS} clients", batched_concurrent, batched_concurrent_lat),
        ):
            summary = artifacts.latency_summary(latencies)
            table.add_row(
                label,
                f"{qps:.1f}",
                f"{summary['p50_ms']:.2f}",
                f"{summary['p95_ms']:.2f}",
                f"{summary['p99_ms']:.2f}",
                qps / single,
            )
        table.print()

        best_pool = max(pool_serial, pool_concurrent, pool_batched, batched_concurrent)
        artifacts.write_metrics(
            "E12",
            {
                "cores": cores,
                "transport": pooled.executor_info().get("transport"),
                "single_process_qps": round(single, 2),
                "pool_serial_qps": round(pool_serial, 2),
                "pool_concurrent_qps": round(pool_concurrent, 2),
                "pool_batched_qps": round(pool_batched, 2),
                "pool_batched_concurrent_qps": round(batched_concurrent, 2),
                "mean_batch_occupancy": round(batching["mean_occupancy"], 3),
                "batch_occupancy_histogram": batching["occupancy_histogram"],
                # the IPC-gap headline: best pool mode over the in-process
                # engine (1.0 would mean the pool costs nothing)
                "pool_vs_single_ratio": round(best_pool / single, 4),
                "single_process_latency": artifacts.latency_summary(single_lat),
                "pool_serial_latency": artifacts.latency_summary(pool_serial_lat),
                "pool_concurrent_latency": artifacts.latency_summary(pool_concurrent_lat),
                "pool_batched_latency": artifacts.latency_summary(pool_batched_lat),
            },
        )
        benchmark(lambda: pooled.search("docs", queries[0]).top(TOP_K))

        if cores < SHARDS:
            pytest.skip(
                f"pool-scaling assertion needs >= {SHARDS} usable cores, got {cores} "
                f"(measured: single {single:.1f} q/s, pool {pool_concurrent:.1f} q/s)"
            )
        assert pool_concurrent > single
    finally:
        inline.close()
        batched.close()
        pooled.close()
