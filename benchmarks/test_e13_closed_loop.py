"""E13 — closed-loop replay of a recorded workload: result cache on vs off.

A workload log is recorded by running a mixed spinql/search stream over
the auction workload, then a Zipf-skewed closed-loop schedule is
synthesized from the log (seed-deterministic — the schedule hash is
asserted stable across re-synthesis) and driven against two otherwise
identical engines: one with the adaptive result cache enabled (the
default) and one with it disabled.  The acceptance claims:

* **Bit identity**: both scenarios report the same ``results_digest`` —
  the cache never changes an answer, only how fast it arrives;
* **The cache earns its keep**: the skewed stream repeats hot templates,
  so the cache-on engine reports a non-zero hit rate.

Per-scenario p50/p95/p99, throughput and hit rate land in
``BENCH_E13.json`` through the shared artifact writer.
"""

from __future__ import annotations

import pytest

import artifacts
from repro.bench.reporting import ResultTable
from repro.engine import Engine
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.workload.replay import EngineTarget, run_schedule, synthesize_schedule
from repro.workloads import generate_auction_triples

LOTS = 300
SEED = 37
REQUESTS = 120
CONCURRENCY = 4
ZIPF_S = 1.1
TOP_K = 5

#: the spinql half of the recorded stream
SOURCES = [
    'out = SELECT [$2="hasAuction"] (triples);',
    'mat = SELECT [$2="material"] (triples);',
    'lots = PROJECT [$1 AS lot] (SELECT [$2="type"] (triples));',
]


def _fresh_engine(workload, *, cached: bool) -> Engine:
    if cached:
        engine = Engine.from_triples(workload.triples)
    else:
        engine = Engine.from_triples(workload.triples, result_cache_size=None)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    engine.create_table(
        "docs",
        Relation(
            schema,
            [
                Column(list(workload.lot_descriptions.keys()), DataType.STRING),
                Column(list(workload.lot_descriptions.values()), DataType.STRING),
            ],
        ),
    )
    return engine


@pytest.fixture(scope="module")
def recorded():
    """The auction workload plus a log recorded from a mixed query stream."""
    workload = generate_auction_triples(LOTS, seed=SEED)
    recorder = _fresh_engine(workload, cached=True)
    queries = [
        " ".join(description.split()[:3])
        for description in list(workload.lot_descriptions.values())[:8]
    ]
    for source in SOURCES:
        recorder.spinql(source).execute()
    for query in queries:
        recorder.search("docs", query).top(TOP_K)
    return workload, recorder.workload_log.snapshot()


def _run_scenario(schedule, workload, *, cached: bool):
    engine = _fresh_engine(workload, cached=cached)
    report = run_schedule(schedule, EngineTarget(engine), concurrency=CONCURRENCY)
    cache_stats = (
        engine.result_cache.statistics.to_dict()
        if engine.result_cache is not None
        else {"hits": 0, "misses": 0, "hit_rate": 0.0}
    )
    return report, cache_stats


def test_e13_closed_loop_replay_cache_on_vs_off(benchmark, recorded):
    workload, records = recorded

    schedule = synthesize_schedule(
        records, num_requests=REQUESTS, seed=SEED, mode="closed", zipf_s=ZIPF_S
    )
    again = synthesize_schedule(
        records, num_requests=REQUESTS, seed=SEED, mode="closed", zipf_s=ZIPF_S
    )
    # same log + seed + knobs → the same schedule, checkable by hash
    assert schedule.schedule_hash() == again.schedule_hash()

    on_report, on_cache = _run_scenario(schedule, workload, cached=True)
    off_report, _off_cache = _run_scenario(schedule, workload, cached=False)

    assert on_report.errors == 0 and off_report.errors == 0
    assert on_report.completed == REQUESTS and off_report.completed == REQUESTS
    # the one thing a result cache must never do is change an answer
    assert on_report.results_digest == off_report.results_digest
    # the Zipf-skewed stream repeats hot templates, so the cache engages
    assert on_cache["hit_rate"] > 0.0

    table = ResultTable(
        f"E13 — closed-loop replay, {REQUESTS} requests, "
        f"{CONCURRENCY} workers, zipf_s={ZIPF_S}",
        ["scenario", "queries/s", "p50 ms", "p95 ms", "p99 ms", "hit rate"],
    )
    for label, report, hit_rate in (
        ("result cache on", on_report, on_cache["hit_rate"]),
        ("result cache off", off_report, 0.0),
    ):
        table.add_row(
            label,
            f"{report.throughput_qps:.1f}",
            f"{report.latency['p50_ms']:.3f}",
            f"{report.latency['p95_ms']:.3f}",
            f"{report.latency['p99_ms']:.3f}",
            round(hit_rate, 3),
        )
    table.print()

    artifacts.write_metrics(
        "E13",
        {
            "requests": REQUESTS,
            "concurrency": CONCURRENCY,
            "zipf_s": ZIPF_S,
            "schedule_hash": schedule.schedule_hash(),
            "bit_identical": True,
            "cache_on": {
                "qps": round(on_report.throughput_qps, 2),
                "latency": {
                    key: round(value, 3) for key, value in on_report.latency.items()
                },
                "hit_rate": round(on_cache["hit_rate"], 4),
                "hits": on_cache["hits"],
                "misses": on_cache["misses"],
            },
            "cache_off": {
                "qps": round(off_report.throughput_qps, 2),
                "latency": {
                    key: round(value, 3) for key, value in off_report.latency.items()
                },
            },
        },
    )

    hot = EngineTarget(_fresh_engine(workload, cached=True))
    warm_request = schedule.requests[0].request
    hot(warm_request)  # sight + admit so the benchmark measures the hit path
    hot(warm_request)
    benchmark(lambda: hot(warm_request))
