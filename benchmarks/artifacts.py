"""The shared benchmark-artifact writer: one ``BENCH_<id>.json`` per benchmark.

Every benchmark's output — the :class:`~repro.bench.reporting.ResultTable`
sweeps it prints and any headline metrics it reports — lands in
``$BENCH_ARTIFACT_DIR`` (default: the current directory, i.e. the repo
root under pytest) as ``BENCH_E10.json``, ``BENCH_A2.json``, … so the
performance trajectory of the repository is a set of machine-readable
files that live next to the code, get committed as they change, and can be
archived and diffed by CI.

Tables are collected automatically: the autouse fixture in
``benchmarks/conftest.py`` records every ``ResultTable.print()`` call and
appends the tables to the module's artifact.  Benchmarks with scalar
acceptance numbers additionally call :func:`write_metrics` themselves.

The first write of a session truncates each artifact, so files never
accumulate stale runs.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any

_MODULE_ID = re.compile(r"test_([ae]\d+)", re.IGNORECASE)

#: artifacts truncated (fresh) so far in this interpreter session
_fresh: set[str] = set()


def artifact_dir() -> Path:
    return Path(os.environ.get("BENCH_ARTIFACT_DIR", "."))


def benchmark_id(module_name: str) -> str | None:
    """``benchmarks.test_e10_topk`` → ``E10``; ``None`` for non-benchmarks."""
    match = _MODULE_ID.search(module_name.rsplit(".", 1)[-1])
    return match.group(1).upper() if match else None


def _artifact_path(bench_id: str) -> Path:
    return artifact_dir() / f"BENCH_{bench_id}.json"


def _load(bench_id: str) -> dict[str, Any]:
    path = _artifact_path(bench_id)
    if bench_id in _fresh and path.exists():
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            pass
    return {"benchmark": bench_id, "tables": [], "metrics": {}}


def _store(bench_id: str, payload: dict[str, Any]) -> Path:
    path = _artifact_path(bench_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    _fresh.add(bench_id)
    return path


def append_tables(bench_id: str, tables: list[Any]) -> Path:
    """Append printed result tables to the benchmark's artifact."""
    payload = _load(bench_id)
    for table in tables:
        payload["tables"].append(
            {"title": table.title, "columns": list(table.columns), "rows": table.rows}
        )
    return _store(bench_id, payload)


def write_metrics(bench_id: str, metrics: dict[str, Any]) -> Path:
    """Merge headline metrics (acceptance numbers) into the artifact."""
    payload = _load(bench_id)
    payload["metrics"].update(metrics)
    return _store(bench_id, payload)


def latency_summary(latencies_ms: list[float]) -> dict[str, float]:
    """Round-tripped p50/p95/p99/mean for a latency sample, in milliseconds.

    One convention for every benchmark artifact: the nearest-rank
    percentiles from :func:`repro.workload.log.latency_percentiles`,
    rounded for stable, diffable JSON.
    """
    from repro.workload.log import latency_percentiles

    return {
        key: round(value, 3)
        for key, value in latency_percentiles(list(latencies_ms)).items()
    }
