"""E11 — cold start from a columnar snapshot vs. rebuilding from CSV/text.

After PR 1–3 made query execution fast, process start — re-parsing triples
and re-deriving statistics in Python loops — dominates end-to-end latency.
This benchmark quantifies what :mod:`repro.storage` buys on the auction
workload:

* ``Engine.open(snapshot)`` vs. the full rebuild (parse triples text,
  materialise storage, register the docs table) — the acceptance bar is an
  order of magnitude;
* time-to-first-query: the snapshot ships warm collection statistics, the
  rebuild pays the analysis pass;
* and, in every mode, functional equivalence: strategy and search results
  from the opened snapshot must equal the rebuilt engine's bit for bit.

The equivalence summary is written through the shared artifact writer
(``BENCH_E11.json`` under ``$BENCH_ARTIFACT_DIR``), so CI can archive it.
"""

from __future__ import annotations

from pathlib import Path

import artifacts
from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.engine import Engine
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.triples.loader import load_triples
from repro.workloads import generate_auction_triples

LOTS = 1200
SEED = 37


def _write_triples_text(workload, path: Path) -> Path:
    """The CSV/text form a fresh process would have to re-parse."""
    lines = []
    for triple in workload.triples:
        line = f"{triple.subject}\t{triple.property}\t{triple.object}"
        if triple.probability != 1.0:
            line += f"\t{triple.probability}"
        lines.append(line)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def _docs_relation(descriptions: dict) -> Relation:
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    return Relation(
        schema,
        [
            Column(list(descriptions.keys()), DataType.STRING),
            Column(list(descriptions.values()), DataType.STRING),
        ],
    )


def _rebuild(triples_file: Path, descriptions: dict) -> Engine:
    """Cold start the old way: parse text, load storage, register docs."""
    engine = Engine.from_triples(load_triples(triples_file, separator="\t"))
    engine.create_table("docs", _docs_relation(descriptions), replace=True)
    return engine


def test_e11_snapshot_cold_start_vs_rebuild(benchmark, tmp_path):
    workload = generate_auction_triples(LOTS, seed=SEED)
    triples_file = _write_triples_text(workload, tmp_path / "triples.tsv")
    query = " ".join(workload.lot_descriptions["lot1"].split()[:3])

    # one warm engine writes the snapshot: tables + warm search statistics
    source = _rebuild(triples_file, workload.lot_descriptions)
    expected_search = source.search("docs", query).top(10)
    expected_strategy = source.strategy("auction", query=query).top(10)
    snapshot = tmp_path / "snapshot"
    source.save(snapshot)

    rebuild = measure_latency(
        lambda: _rebuild(triples_file, workload.lot_descriptions), repetitions=3
    )
    open_only = measure_latency(lambda: Engine.open(snapshot), repetitions=10, warmup=1)

    def rebuild_first_query():
        engine = _rebuild(triples_file, workload.lot_descriptions)
        return engine.search("docs", query).top(10)

    def snapshot_first_query():
        engine = Engine.open(snapshot)
        return engine.search("docs", query).top(10)

    rebuild_query = measure_latency(rebuild_first_query, repetitions=3)
    snapshot_query = measure_latency(snapshot_first_query, repetitions=5, warmup=1)

    # functional equivalence, including tie order
    opened = Engine.open(snapshot)
    search_equal = opened.search("docs", query).top(10) == expected_search
    strategy_equal = opened.strategy("auction", query=query).top(10) == expected_strategy

    speedup_open = rebuild.mean_ms / max(open_only.mean_ms, 1e-9)
    speedup_query = rebuild_query.mean_ms / max(snapshot_query.mean_ms, 1e-9)
    table = ResultTable(
        f"E11 — cold start: snapshot open vs rebuild from text ({LOTS} lots, "
        f"{len(workload.triples)} triples)",
        ["path", "mean (ms)", "speedup vs rebuild"],
    )
    table.add_row("rebuild from text (parse + load)", rebuild.mean_ms, 1.0)
    table.add_row("Engine.open(snapshot)", open_only.mean_ms, speedup_open)
    table.add_row("rebuild + first search", rebuild_query.mean_ms, 1.0)
    table.add_row("open + first search (warm stats)", snapshot_query.mean_ms, speedup_query)
    table.print()

    artifacts.write_metrics(
        "E11",
        {
            "lots": LOTS,
            "triples": len(workload.triples),
            "rebuild_mean_ms": round(rebuild.mean_ms, 3),
            "open_mean_ms": round(open_only.mean_ms, 3),
            "open_speedup": round(speedup_open, 1),
            "rebuild_first_query_ms": round(rebuild_query.mean_ms, 3),
            "snapshot_first_query_ms": round(snapshot_query.mean_ms, 3),
            "search_results_equal": search_equal,
            "strategy_results_equal": strategy_equal,
        }
    )

    assert search_equal and strategy_equal
    # the acceptance bar: opening a snapshot beats re-parsing by >= 10x
    assert open_only.mean_ms * 10.0 <= rebuild.mean_ms, (
        f"open {open_only.mean_ms:.1f} ms vs rebuild {rebuild.mean_ms:.1f} ms"
    )
    benchmark(lambda: Engine.open(snapshot))


def test_e11_lazy_hydration_defers_data_access(tmp_path):
    """Opening touches manifests only; the first query pays for what it scans."""
    workload = generate_auction_triples(300, seed=SEED)
    engine = Engine.from_triples(workload.triples)
    snapshot = tmp_path / "snapshot"
    engine.save(snapshot)

    opened = Engine.open(snapshot)
    assert not opened.database.catalog.is_hydrated("triples")
    opened.store.match(property_name="hasAuction")
    assert opened.database.catalog.is_hydrated("triples")
