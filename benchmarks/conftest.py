"""Shared fixtures for the benchmark suite.

Workloads are generated once per session; individual benchmarks time the hot
operations with pytest-benchmark and print ResultTable sweeps whose rows feed
EXPERIMENTS.md.

All sizes are laptop-scale stand-ins for the paper's collections (1.1M raw
text documents; 8M lots): the absolute numbers differ, the relative shapes
(hot vs. cold, scaling with size and query length, branch composition) are
what each benchmark reports.
"""

from __future__ import annotations

import pytest

from repro.relational.database import Database
from repro.strategy import StrategyExecutor, build_auction_strategy
from repro.triples import TripleStore
from repro.workloads import (
    generate_auction_triples,
    generate_collection,
    generate_product_triples,
    generate_queries,
)


@pytest.fixture(scope="session")
def text_collection():
    """The keyword-search collection for E2/E8/A2 (stand-in for the 1.1M-doc corpus)."""
    return generate_collection(2000, average_length=40, seed=42)


@pytest.fixture(scope="session")
def text_database(text_collection):
    db = Database()
    db.create_table("docs", text_collection.to_relation())
    return db


@pytest.fixture(scope="session")
def text_queries(text_collection):
    return generate_queries(text_collection.vocabulary, 20, terms_per_query=3, seed=7)


@pytest.fixture(scope="session")
def product_workload_bench():
    """Product catalog for the partitioning / emergent-schema benchmarks (E3/A1)."""
    return generate_product_triples(1500, extra_properties=10, seed=17)


@pytest.fixture(scope="session")
def auction_workload_bench():
    """Auction graph for the strategy benchmarks (E5/E6/E7/E8)."""
    return generate_auction_triples(3000, seed=23)


@pytest.fixture(scope="session")
def auction_store_bench(auction_workload_bench):
    store = TripleStore()
    store.add_all(auction_workload_bench.triples)
    store.load()
    return store


@pytest.fixture(scope="session")
def auction_executor(auction_store_bench):
    return StrategyExecutor(auction_store_bench)


@pytest.fixture(scope="session")
def warm_auction_strategy(auction_executor, auction_workload_bench):
    """The Figure 3 strategy with both on-demand indexes already built (hot state)."""
    strategy = build_auction_strategy()
    query = " ".join(auction_workload_bench.lot_descriptions["lot1"].split()[:3])
    auction_executor.run(strategy, query=query)
    return strategy


@pytest.fixture(scope="session")
def auction_queries(auction_workload_bench):
    return generate_queries(auction_workload_bench.vocabulary, 15, terms_per_query=3, seed=3)
