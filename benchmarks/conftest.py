"""Shared fixtures for the benchmark suite.

Workloads are generated once per session; individual benchmarks time the hot
operations with pytest-benchmark and print ResultTable sweeps whose rows feed
EXPERIMENTS.md.

Stores and executors are built through the :class:`~repro.engine.Engine`
facade — the same entry point the CLI and examples use — so the benchmark
numbers measure the public API path.

All sizes are laptop-scale stand-ins for the paper's collections (1.1M raw
text documents; 8M lots): the absolute numbers differ, the relative shapes
(hot vs. cold, scaling with size and query length, branch composition) are
what each benchmark reports.
"""

from __future__ import annotations

import pytest

import artifacts
from repro.bench.reporting import ResultTable
from repro.engine import Engine
from repro.workloads import (
    generate_auction_triples,
    generate_collection,
    generate_product_triples,
    generate_queries,
)


@pytest.fixture(autouse=True)
def record_benchmark_artifacts(request, monkeypatch):
    """Route every printed ResultTable into the shared artifact writer.

    Each benchmark module's tables land in ``BENCH_<id>.json`` (see
    :mod:`artifacts`), so the perf trajectory is always populated — no
    per-benchmark opt-in, no env var required.
    """
    bench_id = artifacts.benchmark_id(request.node.module.__name__)
    printed: list[ResultTable] = []
    original_print = ResultTable.print

    def recording_print(table: ResultTable) -> None:
        printed.append(table)
        original_print(table)

    monkeypatch.setattr(ResultTable, "print", recording_print)
    yield
    if bench_id and printed:
        artifacts.append_tables(bench_id, printed)


@pytest.fixture(scope="session")
def text_collection():
    """The keyword-search collection for E2/E8/A2 (stand-in for the 1.1M-doc corpus)."""
    return generate_collection(2000, average_length=40, seed=42)


@pytest.fixture(scope="session")
def text_engine(text_collection):
    return Engine().create_table("docs", text_collection.to_relation())


@pytest.fixture(scope="session")
def text_database(text_engine):
    return text_engine.database


@pytest.fixture(scope="session")
def text_queries(text_collection):
    return generate_queries(text_collection.vocabulary, 20, terms_per_query=3, seed=7)


@pytest.fixture(scope="session")
def product_workload_bench():
    """Product catalog for the partitioning / emergent-schema benchmarks (E3/A1)."""
    return generate_product_triples(1500, extra_properties=10, seed=17)


@pytest.fixture(scope="session")
def auction_workload_bench():
    """Auction graph for the strategy benchmarks (E5/E6/E7/E8)."""
    return generate_auction_triples(3000, seed=23)


@pytest.fixture(scope="session")
def auction_engine(auction_workload_bench):
    """One engine session over the auction graph (the facade the CLI uses)."""
    return Engine.from_triples(auction_workload_bench.triples)


@pytest.fixture(scope="session")
def auction_store_bench(auction_engine):
    return auction_engine.store


@pytest.fixture(scope="session")
def auction_executor(auction_engine):
    return auction_engine.executor


@pytest.fixture(scope="session")
def warm_auction_strategy(auction_engine, auction_workload_bench):
    """The Figure 3 strategy with both on-demand indexes already built (hot state)."""
    query = " ".join(auction_workload_bench.lot_descriptions["lot1"].split()[:3])
    strategy = auction_engine.strategy("auction")
    strategy.execute(query=query)
    return strategy.graph


@pytest.fixture(scope="session")
def auction_queries(auction_workload_bench):
    return generate_queries(auction_workload_bench.vocabulary, 15, terms_per_query=3, seed=3)
