"""A4 (ablation) — on-demand indexing parameters: stemming and stopwords.

Section 2.1 argues for on-demand index construction precisely because
"parameters (e.g. stemming language) are often hard to decide upfront".
This ablation quantifies what switching those parameters costs and changes:
index-build time, vocabulary size, and hot query latency for four analyzer
configurations over the same collection — something the platform makes a
per-scenario choice rather than a load-time commitment.

Expected shape: stemming shrinks the vocabulary and slightly increases build
time (per-token stemmer cost); stopword removal shrinks postings and
therefore query time for frequent terms; switching configurations requires no
data reloading, only rebuilding the on-demand statistics.
"""

import pytest

from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.ir.ranking import BM25Model
from repro.ir.statistics import build_statistics
from repro.text.analyzers import Analyzer, StandardAnalyzer
from repro.text.stemming.porter import PorterStemmer

ANALYZERS = {
    "lowercase only": Analyzer(),
    "lowercase + porter": Analyzer(stemmer=PorterStemmer()),
    "lowercase + stopwords": Analyzer(remove_stopwords=True),
    "standard (paper: stem(lcase(token)))": StandardAnalyzer("english"),
}


@pytest.fixture(scope="module")
def documents(text_collection):
    return text_collection.documents[:1000]


@pytest.mark.parametrize("analyzer_name", list(ANALYZERS))
def test_a4_index_build(benchmark, analyzer_name, documents):
    analyzer = ANALYZERS[analyzer_name]
    statistics = benchmark.pedantic(
        build_statistics, args=(documents, analyzer), rounds=2, iterations=1
    )
    assert statistics.num_docs == len(documents)


def test_a4_configuration_table(benchmark, documents, text_collection):
    model = BM25Model()
    query_terms_raw = text_collection.vocabulary.frequent_terms(3)

    table = ResultTable(
        "A4 — analyzer configurations over the same 1000 documents",
        ["analyzer", "build (ms)", "vocabulary", "total postings", "hot query (ms)"],
    )
    for name, analyzer in ANALYZERS.items():
        build = measure_latency(lambda a=analyzer: build_statistics(documents, a), repetitions=1)
        statistics = build_statistics(documents, analyzer)
        query_terms = []
        for term in query_terms_raw:
            query_terms.extend(analyzer.analyze(term) or [term])
        query = measure_latency(
            lambda s=statistics, q=query_terms: model.rank(s, q, top_k=10),
            repetitions=5,
            warmup=1,
        )
        postings = sum(len(p[0]) for p in statistics.postings.values())
        table.add_row(name, build.mean_ms, statistics.num_terms, postings, query.mean_ms)
    table.print()

    # stemming must shrink the vocabulary relative to the unstemmed pipeline
    unstemmed = build_statistics(documents, ANALYZERS["lowercase only"])
    stemmed = build_statistics(documents, ANALYZERS["lowercase + porter"])
    assert stemmed.num_terms <= unstemmed.num_terms

    statistics = build_statistics(documents, ANALYZERS["standard (paper: stem(lcase(token)))"])
    benchmark(model.rank, statistics, query_terms_raw, top_k=10)
