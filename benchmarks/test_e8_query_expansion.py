"""E8 — Section 3: the production variant with query expansion.

The production strategy adds five parallel keyword-search branches and query
expansion with synonyms and compound terms.  This benchmark measures the
latency overhead of expansion on the ranking branches and the recall benefit
on queries phrased in a vocabulary that only the synonym dictionary knows.

Expected shape: expansion adds a modest constant overhead per query (more
terms to look up) while recovering results for out-of-vocabulary queries that
the plain strategy misses entirely.
"""

import pytest

from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.ir.query_expansion import ChainedExpander, CompoundExpander, SynonymExpander
from repro.strategy import StrategyExecutor, build_auction_strategy
from repro.strategy.prebuilt import build_expanded_auction_strategy


@pytest.fixture(scope="module")
def expansion_setup(auction_store_bench, auction_workload_bench):
    frequent = auction_workload_bench.vocabulary.frequent_terms(20)
    synonyms = {f"userword{index}": [term] for index, term in enumerate(frequent[:10])}
    expander = ChainedExpander(
        [
            SynonymExpander(synonyms),
            CompoundExpander(vocabulary=set(auction_workload_bench.vocabulary.words)),
        ]
    )
    executor = StrategyExecutor(auction_store_bench)
    plain = build_auction_strategy()
    expanded = build_expanded_auction_strategy(expander)
    warmup_query = " ".join(frequent[:3])
    executor.run(plain, query=warmup_query)
    executor.run(expanded, query=warmup_query)
    return executor, plain, expanded, frequent


def test_e8_plain_strategy_latency(benchmark, expansion_setup):
    executor, plain, _, frequent = expansion_setup
    query = " ".join(frequent[3:6])
    result = benchmark(executor.run, plain, query)
    assert result.result is not None


def test_e8_expanded_strategy_latency(benchmark, expansion_setup):
    executor, _, expanded, frequent = expansion_setup
    query = " ".join(frequent[3:6])
    result = benchmark(executor.run, expanded, query)
    assert result.result is not None


def test_e8_overhead_and_recall_table(benchmark, expansion_setup):
    executor, plain, expanded, frequent = expansion_setup

    in_vocabulary_query = " ".join(frequent[6:9])
    out_of_vocabulary_query = "userword0 userword1 userword2"

    plain_latency = measure_latency(
        lambda: executor.run(plain, query=in_vocabulary_query), repetitions=4, warmup=1
    )
    expanded_latency = measure_latency(
        lambda: executor.run(expanded, query=in_vocabulary_query), repetitions=4, warmup=1
    )
    plain_recall = executor.run(plain, query=out_of_vocabulary_query).result.num_rows
    expanded_recall = executor.run(expanded, query=out_of_vocabulary_query).result.num_rows

    table = ResultTable(
        "E8 — query expansion: latency overhead and recall benefit",
        ["strategy", "hot latency (ms)", "results for out-of-vocabulary query"],
    )
    table.add_row("plain (Figure 3)", plain_latency.mean_ms, plain_recall)
    table.add_row("expanded (production variant)", expanded_latency.mean_ms, expanded_recall)
    table.print()

    assert expanded_recall > plain_recall
    benchmark(executor.run, expanded, in_vocabulary_query)
