"""E6 — Figure 3 / Section 3: the auction strategy.

The paper's production figure: ~150 ms per request (hot) over 8M lots in 25k
auctions.  This benchmark measures the reproduction's auction strategy at
laptop scale: hot per-query latency, scaling with the number of lots,
the contribution of each branch (lots-only vs auctions-only vs the mixed
strategy), and regenerates the Figure 3 diagram.

Expected shape: the mixed strategy costs roughly the sum of its two ranking
branches plus the traversal steps; latency grows with collection size mainly
through the number of matching postings; the hot path is orders of magnitude
cheaper than the cold path that builds the two on-demand indexes.
"""


from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.strategy import StrategyExecutor, build_auction_strategy, render_ascii
from repro.strategy.graph import StrategyGraph
from repro.strategy.library import (
    ExtractTextBlock,
    QueryInputBlock,
    RankByTextBlock,
    SelectByTypeBlock,
    TraversePropertyBlock,
)
from repro.triples import TripleStore
from repro.workloads import generate_auction_triples, generate_queries


def build_lots_only_strategy():
    """The left branch of Figure 3 in isolation."""
    graph = StrategyGraph(name="rank lots by own description")
    graph.add_block("select_lots", SelectByTypeBlock("lot"))
    graph.add_block("query", QueryInputBlock())
    graph.add_block("descriptions", ExtractTextBlock("description"))
    graph.add_block("rank", RankByTextBlock())
    graph.connect("select_lots", "descriptions")
    graph.connect("descriptions", "rank", port="documents")
    graph.connect("query", "rank", port="query")
    return graph


def build_auction_branch_strategy():
    """The right branch of Figure 3 in isolation."""
    graph = StrategyGraph(name="rank lots via auction description")
    graph.add_block("select_lots", SelectByTypeBlock("lot"))
    graph.add_block("query", QueryInputBlock())
    graph.add_block("to_auctions", TraversePropertyBlock("hasAuction"))
    graph.add_block("descriptions", ExtractTextBlock("description"))
    graph.add_block("rank", RankByTextBlock())
    graph.add_block("back", TraversePropertyBlock("hasAuction", backward=True))
    graph.connect("select_lots", "to_auctions")
    graph.connect("to_auctions", "descriptions")
    graph.connect("descriptions", "rank", port="documents")
    graph.connect("query", "rank", port="query")
    graph.connect("rank", "back")
    return graph


def test_e6_hot_auction_query(benchmark, auction_executor, warm_auction_strategy, auction_queries):
    """The headline measurement: one hot request against the full strategy."""
    state = {"index": 0}

    def run():
        query = auction_queries.queries[state["index"] % len(auction_queries.queries)]
        state["index"] += 1
        return auction_executor.run(warm_auction_strategy, query=query)

    result = benchmark(run)
    assert result.result is not None


def test_e6_branch_composition(benchmark, auction_store_bench, auction_queries):
    """Mixed strategy vs its two branches in isolation."""
    executor = StrategyExecutor(auction_store_bench)
    strategies = {
        "lots branch only": build_lots_only_strategy(),
        "auction branch only": build_auction_branch_strategy(),
        "mixed (Figure 3)": build_auction_strategy(),
    }
    query = auction_queries.queries[0]
    table = ResultTable(
        "E6 — Figure 3 branch composition (hot queries)",
        ["strategy", "mean (ms)", "results"],
    )
    for name, strategy in strategies.items():
        executor.run(strategy, query=query)  # warm up on-demand indexes
        stats = measure_latency(
            lambda s=strategy: executor.run(s, query=auction_queries.queries[1]),
            repetitions=4,
            warmup=1,
        )
        results = executor.run(strategy, query=auction_queries.queries[1]).result.num_rows
        table.add_row(name, stats.mean_ms, results)
    table.print()
    print(render_ascii(build_auction_strategy()))

    benchmark(executor.run, strategies["mixed (Figure 3)"], auction_queries.queries[2])


def test_e6_scaling_with_lots(benchmark):
    """Hot latency as the number of lots grows (shape: ~linear in matches)."""
    table = ResultTable(
        "E6 — auction strategy latency vs number of lots",
        ["lots", "auctions", "cold (ms)", "hot mean (ms)", "hot p95 (ms)"],
    )
    for num_lots in (500, 2000, 6000):
        workload = generate_auction_triples(num_lots, seed=31)
        store = TripleStore()
        store.add_all(workload.triples)
        store.load()
        executor = StrategyExecutor(store)
        strategy = build_auction_strategy()
        queries = generate_queries(workload.vocabulary, 6, terms_per_query=3, seed=13)
        cold = executor.run(strategy, query=queries.queries[0]).elapsed_seconds * 1000
        hot = measure_latency(
            lambda: executor.run(strategy, query=queries.queries[1]), repetitions=4, warmup=1
        )
        table.add_row(num_lots, workload.num_auctions, cold, hot.mean_ms, hot.p95_ms)
    table.print()

    workload = generate_auction_triples(500, seed=31)
    store = TripleStore()
    store.add_all(workload.triples)
    store.load()
    executor = StrategyExecutor(store)
    strategy = build_auction_strategy()
    queries = generate_queries(workload.vocabulary, 3, terms_per_query=3, seed=13)
    executor.run(strategy, query=queries.queries[0])
    benchmark(executor.run, strategy, queries.queries[1])


def test_e6_score_propagation_through_graph(
    auction_executor, warm_auction_strategy, auction_workload_bench
):
    """Lots reached only via their auction inherit probabilities from it (Section 3)."""
    auction = auction_workload_bench.auction_ids[0]
    own_terms = set(auction_workload_bench.auction_descriptions[auction].split())
    for other in auction_workload_bench.auction_ids[1:]:
        own_terms -= set(auction_workload_bench.auction_descriptions[other].split())
    assert own_terms
    query = " ".join(list(own_terms)[:2])
    run = auction_executor.run(warm_auction_strategy, query=query)
    returned = {node for node, _ in run.top(100)}
    siblings = set(auction_workload_bench.lots_in_auction(auction))
    assert returned & siblings
