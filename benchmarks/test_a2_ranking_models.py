"""A2 (ablation) — Section 2.1: swapping the ranking function.

"Most alternative ranking functions would easily adapt or reuse large parts
of this implementation."  All ranking models in this reproduction share the
same materialised statistics; this ablation measures per-query latency for
BM25, TF-IDF, the query-likelihood language model and the boolean baseline
over the same collection, and reports how much of the pipeline is reused
(the statistics build is identical, only the per-term formula changes).

Expected shape: all models have the same asymptotic per-query cost (they
iterate the same posting lists); constant-factor differences come from the
per-term arithmetic only.  Rank agreement with BM25 is high for TF-IDF/LM and
lower for the boolean baseline.
"""

import pytest

from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.ir.ranking import BM25Model, BooleanModel, LanguageModel, TfIdfModel
from repro.ir.statistics import build_statistics

MODELS = {
    "bm25": BM25Model(),
    "tfidf": TfIdfModel(),
    "lm-dirichlet": LanguageModel(),
    "boolean": BooleanModel(),
}


@pytest.fixture(scope="module")
def shared_statistics(text_collection):
    return build_statistics(text_collection.documents)


@pytest.fixture(scope="module")
def query_terms(text_collection):
    return text_collection.vocabulary.frequent_terms(3)


@pytest.mark.parametrize("model_name", list(MODELS))
def test_a2_model_query_latency(benchmark, model_name, shared_statistics, query_terms):
    model = MODELS[model_name]
    ranked = benchmark(model.rank, shared_statistics, query_terms, top_k=10)
    assert len(ranked) <= 10


def test_a2_model_comparison_table(benchmark, shared_statistics, query_terms, text_collection):
    bm25_top = MODELS["bm25"].rank(shared_statistics, query_terms, top_k=20).doc_ids
    table = ResultTable(
        "A2 — ranking models over identical statistics (2000 docs, 3 frequent terms)",
        ["model", "mean query (ms)", "results", "top-20 overlap with BM25"],
    )
    for name, model in MODELS.items():
        latency = measure_latency(
            lambda m=model: m.rank(shared_statistics, query_terms, top_k=20),
            repetitions=5,
            warmup=1,
        )
        ranked = model.rank(shared_statistics, query_terms, top_k=20)
        overlap = len(set(ranked.doc_ids) & set(bm25_top)) / max(len(bm25_top), 1)
        table.add_row(name, latency.mean_ms, len(ranked), f"{overlap:.2f}")
    table.print()

    benchmark(MODELS["bm25"].rank, shared_statistics, query_terms)


def test_a2_statistics_are_shared(shared_statistics, query_terms):
    """The reuse claim: every model consumes the same statistics object."""
    results = {name: model.rank(shared_statistics, query_terms) for name, model in MODELS.items()}
    matching = {frozenset(ranked.doc_ids) for ranked in results.values()}
    # every model scores exactly the documents matching at least one term
    assert len(matching) == 1
