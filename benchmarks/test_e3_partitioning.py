"""E3 — Section 2.2: triple-table self-joins vs. vertical partitioning vs. caching.

The paper discusses the cost of reconstructing relational rows from a single
triples table (self-joins), property partitioning (Abadi et al.) and its
degradation with many properties (Sidirourgos et al.), and Spinque's
query-driven on-demand materialization.  This benchmark runs the same
pattern-matching workload over the three storage layouts and measures the
on-demand cache separately.

Expected shape: property partitioning answers property-bound patterns fastest
(it scans only the relevant partition); the single table pays for scanning
everything; with many properties the gap per *unbound* query narrows (all
partitions must be scanned) while load-time table count grows; the on-demand
cache turns repeated sub-queries into constant-time lookups.
"""

import pytest

from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.triples import TripleStore
from repro.triples.partitioning import make_storage
from repro.workloads import generate_product_triples

LAYOUTS = ("single-table", "property-partitioned", "type-partitioned")


def build_store(triples, layout):
    store = TripleStore(storage=make_storage(layout))
    store.add_all(triples)
    store.load()
    return store


@pytest.fixture(scope="module", params=LAYOUTS)
def layout_store(request, product_workload_bench):
    return request.param, build_store(product_workload_bench.triples, request.param)


def test_e3_property_bound_pattern(benchmark, layout_store):
    """``(?, category, toy)`` — the pattern partitioning is designed for."""
    layout, store = layout_store
    result = benchmark(store.match, None, "category", "toy")
    assert result.num_rows > 0


def test_e3_docs_view_self_join(benchmark, layout_store):
    """The paper's docs view: a self-join reconstructing (product, description) rows."""
    layout, store = layout_store
    result = benchmark.pedantic(
        store.docs_relation,
        kwargs={
            "filter_property": "category",
            "filter_value": "toy",
            "text_property": "description",
        },
        rounds=3,
        iterations=1,
    )
    assert result.num_rows > 0


def test_e3_sweep_property_count(benchmark, product_workload_bench):
    """Latency per layout as the number of distinct properties grows."""
    table = ResultTable(
        "E3 — storage layouts vs. number of properties (800 products)",
        ["extra properties", "layout", "tables", "bound pattern (ms)", "unbound subject scan (ms)"],
    )
    for extra in (0, 10, 40):
        workload = generate_product_triples(800, extra_properties=extra, seed=29)
        for layout in LAYOUTS:
            store = build_store(workload.triples, layout)
            bound = measure_latency(
                lambda: store.match(property_name="category", obj="toy"), repetitions=3, warmup=1
            )
            unbound = measure_latency(
                lambda: store.match(subject="product17"), repetitions=3, warmup=1
            )
            tables = len(store.storage.table_names(store.database))
            table.add_row(extra, layout, tables, bound.mean_ms, unbound.mean_ms)
    table.print()

    store = build_store(product_workload_bench.triples, "single-table")
    benchmark(store.match, None, "category", "toy")


def test_e3_on_demand_cache_effect(benchmark, product_workload_bench):
    """The adaptive query-driven cache: repeated sub-queries are served materialised."""
    store = build_store(product_workload_bench.triples, "single-table")
    store.database.clear_cache()
    cold = measure_latency(
        lambda: store.match(property_name="description"), repetitions=1
    )
    hot = measure_latency(
        lambda: store.match(property_name="description"), repetitions=5
    )
    table = ResultTable(
        "E3 — on-demand materialization (repeated property selection)",
        ["state", "mean (ms)", "cache entries", "cache hit rate"],
    )
    table.add_row("cold (first request)", cold.mean_ms, len(store.database.cache), "-")
    table.add_row(
        "hot (materialised)",
        hot.mean_ms,
        len(store.database.cache),
        f"{store.database.cache.statistics.hit_rate:.2f}",
    )
    table.print()
    assert hot.mean_ms <= cold.mean_ms

    benchmark(store.match, None, "description", None)
