"""E5 — Figure 2: the toy strategy end to end.

Measures the "rank toy products by their description" strategy on a
generated product catalog: cold (first query builds the on-demand index for
the filtered sub-collection) versus hot, and the per-block time breakdown,
and regenerates the Figure 2 diagram from the strategy graph.
"""

import pytest

from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.strategy import StrategyExecutor, build_toy_strategy, render_ascii
from repro.triples import TripleStore
from repro.workloads import generate_queries


@pytest.fixture(scope="module")
def toy_setup(product_workload_bench):
    store = TripleStore()
    store.add_all(product_workload_bench.triples)
    store.load()
    executor = StrategyExecutor(store)
    strategy = build_toy_strategy(category="toy")
    queries = generate_queries(product_workload_bench.vocabulary, 10, terms_per_query=3, seed=9)
    # warm up: builds the on-demand index for the toy sub-collection
    executor.run(strategy, query=queries.queries[0])
    return executor, strategy, queries


def test_e5_hot_toy_strategy_query(benchmark, toy_setup):
    executor, strategy, queries = toy_setup
    state = {"index": 0}

    def run():
        query = queries.queries[state["index"] % len(queries)]
        state["index"] += 1
        return executor.run(strategy, query=query)

    run_result = benchmark(run)
    assert run_result.result is not None


def test_e5_cold_vs_hot_and_block_breakdown(benchmark, product_workload_bench):
    store = TripleStore()
    store.add_all(product_workload_bench.triples)
    store.load()
    executor = StrategyExecutor(store)
    strategy = build_toy_strategy(category="toy")
    queries = generate_queries(product_workload_bench.vocabulary, 6, terms_per_query=3, seed=19)

    cold_run = executor.run(strategy, query=queries.queries[0])
    hot = measure_latency(
        lambda: executor.run(strategy, query=queries.queries[1]), repetitions=5, warmup=1
    )

    table = ResultTable(
        "E5 — Figure 2 toy strategy (generated catalog)",
        ["measurement", "value (ms)"],
    )
    table.add_row("cold first query (builds on-demand index)", cold_run.elapsed_seconds * 1000)
    table.add_row("hot query mean", hot.mean_ms)
    for block, seconds in cold_run.block_timings.items():
        table.add_row(f"  cold breakdown: {block}", seconds * 1000)
    table.print()

    # regenerate the Figure 2 diagram
    print(render_ascii(strategy))

    benchmark(executor.run, strategy, queries.queries[2])


def test_e5_results_respect_category_filter(toy_setup, product_workload_bench):
    executor, strategy, queries = toy_setup
    toys = set(product_workload_bench.products_in_category("toy"))
    run = executor.run(strategy, query=queries.queries[3])
    assert all(node in toys for node, _ in run.top(20))
