"""E4 — Section 2.3: the cost of probabilistic score propagation.

The paper's probabilistic layer appends a probability column to every table
and computes it per operator.  This benchmark compares the same
sub-collection query (the toy docs view) evaluated (a) through the plain
relational engine ignoring probabilities and (b) through the PRA evaluator
with probability propagation, plus the SpinQL front-end on top.

Expected shape: the probabilistic evaluation costs a constant factor over the
plain relational plan (it touches one extra column and combines it per
operator); parsing/compiling SpinQL adds microseconds, supporting the claim
that the algebra is cheap enough to be used everywhere.
"""

import pytest

from repro.bench.reporting import ResultTable
from repro.bench.harness import measure_latency
from repro.pra.evaluator import PRAEvaluator
from repro.relational.algebra import Join, Project, Scan, Select
from repro.relational.expressions import col, lit
from repro.spinql import compile_script, evaluate
from repro.triples import TripleStore

SPINQL_DOCS = """
docs = PROJECT [$1 AS docID, $6 AS data] (
  JOIN INDEPENDENT [$1=$1] (
    SELECT [$2="category" and $3="toy"] (triples),
    SELECT [$2="description"] (triples) ) );
"""


@pytest.fixture(scope="module")
def product_store(product_workload_bench):
    store = TripleStore()
    store.add_all(product_workload_bench.triples)
    store.load()
    return store


def plain_relational_plan():
    """The same docs view as a non-probabilistic logical plan."""
    categories = Select(
        Scan("triples"),
        col("property").eq(lit("category")).and_(col("object").eq(lit("toy"))),
    )
    descriptions = Select(Scan("triples"), col("property").eq(lit("description")))
    joined = Join(categories, descriptions, [("subject", "subject")])
    return Project(
        joined,
        [("docID", col("subject")), ("data", col("object_right"))],
    )


def test_e4_plain_relational_docs_view(benchmark, product_store):
    plan = plain_relational_plan()
    result = benchmark(product_store.database.execute, plan, use_cache=False)
    assert result.num_rows > 0


def test_e4_pra_docs_view(benchmark, product_store):
    compiled = compile_script(SPINQL_DOCS)
    evaluator = PRAEvaluator(product_store.database)
    result = benchmark(evaluator.evaluate, compiled.final_plan)
    assert result.num_rows > 0
    assert result.schema.names[-1] == "p"


def test_e4_spinql_end_to_end(benchmark, product_store):
    result = benchmark(evaluate, SPINQL_DOCS, product_store.database)
    assert result.num_rows > 0


def test_e4_compile_only(benchmark):
    compiled = benchmark(compile_script, SPINQL_DOCS)
    assert compiled.final_plan is not None


def test_e4_overhead_table(benchmark, product_store):
    """Summarise plain vs probabilistic vs SpinQL-front-end latencies."""
    plan = plain_relational_plan()
    compiled = compile_script(SPINQL_DOCS)
    evaluator = PRAEvaluator(product_store.database)

    plain = measure_latency(
        lambda: product_store.database.execute(plan, use_cache=False), repetitions=5, warmup=1
    )
    pra = measure_latency(
        lambda: evaluator.evaluate(compiled.final_plan), repetitions=5, warmup=1
    )
    spinql = measure_latency(
        lambda: evaluate(SPINQL_DOCS, product_store.database), repetitions=5, warmup=1
    )
    compile_only = measure_latency(lambda: compile_script(SPINQL_DOCS), repetitions=10)

    table = ResultTable(
        "E4 — score-propagation overhead on the toy docs view",
        ["path", "mean (ms)", "relative to plain"],
    )
    table.add_row("plain relational (no probabilities)", plain.mean_ms, 1.0)
    table.add_row(
        "PRA evaluation (p propagated)", pra.mean_ms, pra.mean_ms / max(plain.mean_ms, 1e-9)
    )
    table.add_row(
        "SpinQL parse+compile+evaluate", spinql.mean_ms, spinql.mean_ms / max(plain.mean_ms, 1e-9)
    )
    table.add_row(
        "SpinQL parse+compile only",
        compile_only.mean_ms,
        compile_only.mean_ms / max(plain.mean_ms, 1e-9),
    )
    table.print()

    benchmark(evaluator.evaluate, compiled.final_plan)
