"""A1 (ablation) — Section 2.2: emergent schemas as an alternative to self-joins.

The paper mentions emergent-schema detection (Pham & Boncz) as "an
interesting alternative to consider ... eliminating many join operations".
This ablation detects the emergent tables of the product catalog, then
answers the toy docs query both ways: via the triple self-join and via a
simple scan of the emergent table, and reports detection cost and coverage.

Expected shape: detection is a one-off cost roughly linear in the number of
triples; once the emergent table exists, the docs query becomes a scan and is
substantially cheaper than the self-join.
"""

import pytest

from repro.bench.harness import measure_latency
from repro.bench.reporting import ResultTable
from repro.relational.algebra import Project, Scan, Select
from repro.relational.expressions import col, lit
from repro.triples import TripleStore
from repro.triples.emergent_schema import EmergentSchemaDetector


@pytest.fixture(scope="module")
def emergent_setup(product_workload_bench):
    store = TripleStore()
    store.add_all(product_workload_bench.triples)
    store.load()
    detector = EmergentSchemaDetector(min_support=5)
    tables = detector.detect(product_workload_bench.triples)
    # register the emergent tables in the same database
    for table in tables:
        store.database.create_table(table.name, table.relation, replace=True)
    return store, detector, tables


def find_docs_table(tables):
    """The emergent table that carries both category and description columns."""
    for table in tables:
        if "category" in table.properties and "description" in table.properties:
            return table
    raise AssertionError("no emergent table covers category + description")


def test_a1_detection_cost(benchmark, product_workload_bench):
    detector = EmergentSchemaDetector(min_support=5)
    tables = benchmark.pedantic(
        detector.detect, args=(product_workload_bench.triples,), rounds=3, iterations=1
    )
    assert tables


def test_a1_docs_query_via_emergent_table(benchmark, emergent_setup):
    store, detector, tables = emergent_setup
    docs_table = find_docs_table(tables)
    plan = Project(
        Select(Scan(docs_table.name), col("category").eq(lit("toy"))),
        [("docID", col("subject")), ("data", col("description"))],
    )
    result = benchmark(store.database.execute, plan, use_cache=False)
    assert result.num_rows > 0


def test_a1_docs_query_via_self_join(benchmark, emergent_setup):
    store, _, _ = emergent_setup
    result = benchmark.pedantic(
        store.docs_relation,
        kwargs={
            "filter_property": "category",
            "filter_value": "toy",
            "text_property": "description",
        },
        rounds=3,
        iterations=1,
    )
    assert result.num_rows > 0


def test_a1_summary_table(benchmark, emergent_setup, product_workload_bench):
    store, detector, tables = emergent_setup
    docs_table = find_docs_table(tables)

    detection = measure_latency(
        lambda: detector.detect(product_workload_bench.triples), repetitions=2
    )
    plan = Project(
        Select(Scan(docs_table.name), col("category").eq(lit("toy"))),
        [("docID", col("subject")), ("data", col("description"))],
    )
    emergent_query = measure_latency(
        lambda: store.database.execute(plan, use_cache=False), repetitions=4, warmup=1
    )
    self_join = measure_latency(
        lambda: store.docs_relation(
            filter_property="category", filter_value="toy", text_property="description"
        ),
        repetitions=2,
    )
    coverage = detector.coverage(product_workload_bench.triples, tables)

    table = ResultTable(
        "A1 — emergent schema vs triple self-join (toy docs query)",
        ["measurement", "value"],
    )
    table.add_row("emergent tables detected", len(tables))
    table.add_row("subject coverage", f"{coverage:.2%}")
    table.add_row("detection cost (ms, one-off)", detection.mean_ms)
    table.add_row("docs query via emergent table (ms)", emergent_query.mean_ms)
    table.add_row("docs query via triple self-join (ms)", self_join.mean_ms)
    table.print()

    assert emergent_query.mean_ms < self_join.mean_ms
    benchmark(store.database.execute, plan, use_cache=False)
