"""E7 — Section 3: query-stream throughput.

The paper reports the production strategy serving 150,000 requests/day (with
peaks of 450/minute, i.e. 7.5 requests/second) at ~150 ms per request on a
single VM.  This benchmark replays a query stream through the engine facade
against the hot auction strategy and extrapolates sustainable requests/day
and requests/minute from the measured mean latency, so the reproduction's
numbers can be read in the same units as the paper's.

A second benchmark isolates the facade's plan cache: a parameterized SpinQL
query replayed against changing bindings compiles and optimizes once, then
every further execution is a plan-cache hit.
"""

from repro.bench.harness import LatencyStats, measure_latency, throughput_per_day
from repro.bench.reporting import ResultTable

PAPER_REQUESTS_PER_DAY = 150_000
PAPER_PEAK_PER_MINUTE = 450
PAPER_LATENCY_MS = 150.0


def test_e7_query_stream_replay(benchmark, auction_engine, warm_auction_strategy, auction_queries):
    """Replay the query stream; report latency percentiles and derived throughput."""
    strategy = auction_engine.strategy(warm_auction_strategy)
    runs = strategy.execute_many([{"query": query} for query in auction_queries.queries])
    stats = LatencyStats([run.elapsed_seconds * 1000.0 for run in runs])

    per_day = throughput_per_day(stats.mean_ms)
    per_minute = per_day / 1440.0

    table = ResultTable(
        "E7 — throughput extrapolated from hot per-request latency",
        ["metric", "this reproduction", "paper (production)"],
    )
    table.add_row("mean latency (ms)", stats.mean_ms, PAPER_LATENCY_MS)
    table.add_row("p95 latency (ms)", stats.p95_ms, "-")
    table.add_row("sustainable requests/day", f"{per_day:,.0f}", f"{PAPER_REQUESTS_PER_DAY:,}")
    table.add_row(
        "sustainable requests/minute", f"{per_minute:,.0f}", f"peak {PAPER_PEAK_PER_MINUTE}"
    )
    table.print()

    # the reproduction must at least sustain the paper's daily load at this scale
    assert per_day > PAPER_REQUESTS_PER_DAY

    state = {"index": 0}

    def run_one():
        query = auction_queries.queries[state["index"] % len(auction_queries.queries)]
        state["index"] += 1
        return strategy.execute(query=query)

    benchmark(run_one)


def test_e7_parameterized_plan_cache(benchmark, auction_engine, auction_workload_bench):
    """Repeated parameterized queries skip compile+optimize via the plan cache."""
    source = "auctions = TRAVERSE ['hasAuction'] (seeds);"
    lots = auction_workload_bench.lot_ids[:50]

    def compile_fresh():
        # a new engine has an empty plan cache: full parse + compile + optimize
        from repro.engine import Engine

        fresh = Engine(auction_engine.database)
        return fresh.spinql(source, seeds=lots[:5]).execute()

    query = auction_engine.spinql(source, seeds=lots[:5])
    query.execute()  # populate the cache
    before = auction_engine.plan_cache.statistics.hits

    def replay_cached():
        return query.execute(seeds=lots)

    cold = measure_latency(compile_fresh, repetitions=3)
    hot = measure_latency(replay_cached, repetitions=10, warmup=1)
    hits = auction_engine.plan_cache.statistics.hits - before

    table = ResultTable(
        "E7 — parameterized SpinQL replay: plan cache on the compile path",
        ["measurement", "mean (ms)", "plan-cache hits"],
    )
    table.add_row("fresh engine (compile + optimize + run)", cold.mean_ms, 0)
    table.add_row("cached plan (run only)", hot.mean_ms, hits)
    table.print()

    assert hits >= 10  # every replay hit the cache
    benchmark(replay_cached)
