"""E7 — Section 3: query-stream throughput.

The paper reports the production strategy serving 150,000 requests/day (with
peaks of 450/minute, i.e. 7.5 requests/second) at ~150 ms per request on a
single VM.  This benchmark replays a query stream against the hot auction
strategy and extrapolates sustainable requests/day and requests/minute from
the measured mean latency, so the reproduction's numbers can be read in the
same units as the paper's.
"""

from repro.bench.harness import LatencyStats, throughput_per_day
from repro.bench.reporting import ResultTable

PAPER_REQUESTS_PER_DAY = 150_000
PAPER_PEAK_PER_MINUTE = 450
PAPER_LATENCY_MS = 150.0


def test_e7_query_stream_replay(benchmark, auction_executor, warm_auction_strategy, auction_queries):
    """Replay the query stream; report latency percentiles and derived throughput."""
    samples = []
    for query in auction_queries.queries:
        run = auction_executor.run(warm_auction_strategy, query=query)
        samples.append(run.elapsed_seconds * 1000.0)
    stats = LatencyStats(samples)

    per_day = throughput_per_day(stats.mean_ms)
    per_minute = per_day / 1440.0

    table = ResultTable(
        "E7 — throughput extrapolated from hot per-request latency",
        ["metric", "this reproduction", "paper (production)"],
    )
    table.add_row("mean latency (ms)", stats.mean_ms, PAPER_LATENCY_MS)
    table.add_row("p95 latency (ms)", stats.p95_ms, "-")
    table.add_row("sustainable requests/day", f"{per_day:,.0f}", f"{PAPER_REQUESTS_PER_DAY:,}")
    table.add_row("sustainable requests/minute", f"{per_minute:,.0f}", f"peak {PAPER_PEAK_PER_MINUTE}")
    table.print()

    # the reproduction must at least sustain the paper's daily load at this scale
    assert per_day > PAPER_REQUESTS_PER_DAY

    state = {"index": 0}

    def run_one():
        query = auction_queries.queries[state["index"] % len(auction_queries.queries)]
        state["index"] += 1
        return auction_executor.run(warm_auction_strategy, query=query)

    benchmark(run_one)
