"""A3 (ablation) — retrieval effectiveness of the auction strategy.

The paper reports efficiency, not effectiveness, for the auction scenario
("we consider this performance adequate to the complexity of this task"),
but the strategy's *purpose* is to retrieve the right lots — in particular,
the right branch exists to recall lots whose own description does not match
the query.  The synthetic auction workload knows its ground truth (lots
belong to auctions whose distinctive vocabulary the queries are drawn from),
so this ablation measures precision/recall/MAP/nDCG for:

* the lots-only branch,
* the mixed Figure 3 strategy with the paper's weighting.

Expected shape: the mixed strategy's recall at deep cutoffs is at least as
high as the lots-only branch (the auction branch contributes sibling lots),
with no collapse in early precision.
"""

import pytest

from repro.bench.reporting import ResultTable
from repro.eval import evaluate_strategy, judgments_from_auctions
from repro.strategy import StrategyExecutor, build_auction_strategy
from repro.triples import TripleStore
from repro.workloads import generate_auction_triples


@pytest.fixture(scope="module")
def effectiveness_setup():
    workload = generate_auction_triples(1200, 8, seed=101, shared_term_fraction=0.4)
    store = TripleStore()
    store.add_all(workload.triples)
    store.load()
    qrels = judgments_from_auctions(workload, terms_per_query=2)
    executor = StrategyExecutor(store)
    return workload, executor, qrels


def test_a3_effectiveness_comparison(benchmark, effectiveness_setup):
    workload, executor, qrels = effectiveness_setup
    strategies = {
        "lots branch only (weights 1.0 / 0.0)": build_auction_strategy(
            lot_weight=1.0, auction_weight=0.0000001
        ),
        "mixed Figure 3 (weights 0.7 / 0.3)": build_auction_strategy(
            lot_weight=0.7, auction_weight=0.3
        ),
    }
    cutoff = 20
    reports = {}
    for name, strategy in strategies.items():
        reports[name] = evaluate_strategy(executor, strategy, qrels, cutoff=cutoff, top_k=200)

    table = ResultTable(
        f"A3 — effectiveness on auction ground truth ({len(qrels)} queries, cutoff {cutoff})",
        ["strategy", f"P@{cutoff}", f"R@{cutoff}", "MAP", f"nDCG@{cutoff}", "MRR"],
    )
    for name, report in reports.items():
        means = report.means()
        table.add_row(
            name,
            means[f"precision@{cutoff}"],
            means[f"recall@{cutoff}"],
            means["average_precision"],
            means[f"ndcg@{cutoff}"],
            means["reciprocal_rank"],
        )
    table.print()

    lots_only = reports["lots branch only (weights 1.0 / 0.0)"].means()
    mixed = reports["mixed Figure 3 (weights 0.7 / 0.3)"].means()
    # the auction branch must not hurt recall; it exists to add sibling lots
    assert mixed[f"recall@{cutoff}"] >= lots_only[f"recall@{cutoff}"] - 1e-9
    assert mixed["reciprocal_rank"] > 0.2

    query = qrels.queries()[0]
    strategy = strategies["mixed Figure 3 (weights 0.7 / 0.3)"]
    benchmark(executor.run, strategy, query)
